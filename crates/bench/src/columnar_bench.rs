//! Columnar micro-benchmark: vectorized column-at-a-time execution vs. the row path.
//!
//! Three workloads over a generated source instance — selection-heavy, join-heavy and
//! aggregate-heavy — are executed by the same [`Executor`] twice: once with the columnar
//! kernels on (the default) and once forced onto the row path
//! ([`Executor::with_columnar`]`(false)`).  The run *asserts* that the two modes produce
//! row-for-row identical answers before any timing is reported, so the speedup numbers can
//! never come from a divergent fast path.
//!
//! A fourth phase replays the oversized budgeted batch of
//! [`spill_bench`](crate::spill_bench) and reports the spill segment codec's compression:
//! `segment-bytes-raw` (what the segments would cost under the uncompressed row codec) vs.
//! `segment-bytes-encoded` (the per-column dictionary / delta / run-length encodings actually
//! written).
//!
//! The `columnar_bench` binary writes the rows to `BENCH_columnar.json`; CI gates on the
//! select-heavy speedup and on the compression ratio.

use crate::experiments::{ExperimentRow, RowKind};
use crate::spill_bench::oversized_batch;
use std::sync::Arc;
use std::time::{Duration, Instant};
use urm_core::CoreResult;
use urm_datagen::source::generate_source;
use urm_engine::{AggFunc, CompareOp, EpochDag, Executor, Plan, Predicate};
use urm_storage::{Catalog, Relation, Value};

/// Configuration of one columnar micro-benchmark run.
#[derive(Debug, Clone, Copy)]
pub struct ColumnarBenchConfig {
    /// Source-instance scale factor (`Orders` gets `2 × scale` rows, `LineItem` `4 × scale`).
    pub scale: usize,
    /// Timed iterations per (workload, mode) pair.
    pub iters: usize,
    /// Data-generation seed.
    pub seed: u64,
    /// The spill phase's memory budget is `database_bytes / budget_divisor` (≥ 2).
    pub budget_divisor: usize,
}

impl Default for ColumnarBenchConfig {
    fn default() -> Self {
        ColumnarBenchConfig {
            scale: 300,
            iters: 200,
            seed: 42,
            budget_divisor: 4,
        }
    }
}

/// The named plans of the micro-benchmark, in report order.
fn workloads() -> Vec<(&'static str, Plan)> {
    // Selection-heavy: four predicates over the wide Orders relation, each moderately
    // selective so every filter stage still scans real row counts, with a near-zero combined
    // selectivity — the typed compare kernels scan raw column vectors while the row path
    // pays predicate dispatch and survivor-tuple clones per stage, and the (shared)
    // materialisation cost of the few surviving rows stays negligible on both sides.
    let select_heavy = Plan::scan("Orders")
        .select(Predicate::eq("Orders.orderStatus", Value::from("OPEN")))
        .select(Predicate::compare(
            "Orders.orderPriority",
            CompareOp::Le,
            Value::from(2i64),
        ))
        .select(Predicate::compare(
            "Orders.totalPrice",
            CompareOp::Gt,
            Value::from(5000.0),
        ))
        .select(Predicate::eq("Orders.clerk", Value::from("clerk7")))
        .project(vec!["Orders.clerk".into(), "Orders.totalPrice".into()]);

    // Join-heavy: a selective probe side against the whole LineItem build side — the
    // columnar join hashes raw key columns instead of tuple-borrowed values.
    let join_heavy = Plan::scan("Orders")
        .select(Predicate::compare(
            "Orders.orderPriority",
            CompareOp::Le,
            Value::from(2i64),
        ))
        .hash_join(
            Plan::scan("LineItem"),
            vec![("Orders.orderNum".into(), "LineItem.itemOrderNum".into())],
        )
        .project(vec!["Orders.clerk".into(), "LineItem.extendedPrice".into()]);

    // Aggregate-heavy: SUM over a large filtered scan folds one float column directly.
    let aggregate_heavy = Plan::scan("LineItem")
        .select(Predicate::compare(
            "LineItem.quantity",
            CompareOp::Gt,
            Value::from(5i64),
        ))
        .aggregate(AggFunc::Sum("LineItem.extendedPrice".into()));

    vec![
        ("select-heavy", select_heavy),
        ("join-heavy", join_heavy),
        ("aggregate-heavy", aggregate_heavy),
    ]
}

/// Outcome of one (workload, mode) measurement.
struct Measurement {
    total: Duration,
    rows_processed: u64,
    source_operators: u64,
    columnar_rows: u64,
    result: Arc<Relation>,
}

impl Measurement {
    fn rows_per_second(&self) -> f64 {
        let secs = self.total.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.rows_processed as f64 / secs
        }
    }

    fn row(&self, series: &str, x: &str) -> ExperimentRow {
        ExperimentRow {
            experiment: "columnar".into(),
            series: series.into(),
            x: x.into(),
            kind: RowKind::Timing,
            time: self.total,
            source_operators: self.source_operators,
            answers: self.result.len(),
            extra: Some(("rows-per-sec".into(), self.rows_per_second())),
        }
    }
}

fn measure(catalog: &Catalog, plan: &Plan, iters: usize, columnar: bool) -> Measurement {
    let mut exec = Executor::new(catalog).with_columnar(columnar);
    exec.run(plan).expect("benchmark plan must execute"); // warm-up (and cache conversion)
    let mut exec = Executor::new(catalog).with_columnar(columnar);
    let physical = exec.bind(plan).expect("benchmark plan must bind");
    let start = Instant::now();
    let mut result = None;
    for _ in 0..iters {
        result = Some(
            exec.execute(&physical)
                .expect("benchmark plan must execute"),
        );
    }
    let total = start.elapsed();
    let stats = exec.stats();
    Measurement {
        total,
        rows_processed: stats.tuples_read + stats.tuples_output,
        source_operators: stats.operators_executed,
        columnar_rows: stats.columnar_rows,
        result: result.expect("at least one iteration"),
    }
}

fn counter(series: &str, x: &str, name: &str, value: f64) -> ExperimentRow {
    ExperimentRow::counter("columnar", series, x, name, value)
}

/// Runs the micro-benchmark, returning `BENCH_columnar.json`-ready rows.
///
/// # Panics
/// Panics (failing the CI step) when the columnar and row modes disagree on any workload's
/// answer — schemas, values *and row order* must be identical — or when the spill phase's
/// encoded segments fail to undercut the raw row-codec bytes.
pub fn run(config: &ColumnarBenchConfig) -> CoreResult<Vec<ExperimentRow>> {
    let catalog = generate_source(config.scale, config.seed);
    let iters = config.iters.max(1);
    let mut rows = Vec::new();

    for (name, plan) in workloads() {
        let row_mode = measure(&catalog, &plan, iters, false);
        let col_mode = measure(&catalog, &plan, iters, true);
        assert_eq!(
            row_mode.result.schema(),
            col_mode.result.schema(),
            "modes disagree on schema for workload '{name}'"
        );
        assert_eq!(
            row_mode.result.rows(),
            col_mode.result.rows(),
            "modes disagree on rows for workload '{name}'"
        );
        assert_eq!(
            row_mode.columnar_rows, 0,
            "row mode must not touch the vectorized kernels ('{name}')"
        );
        assert!(
            col_mode.columnar_rows > 0,
            "columnar mode never hit the vectorized kernels ('{name}')"
        );

        rows.push(row_mode.row("row", name));
        rows.push(col_mode.row("columnar", name));
        let speedup = if col_mode.total.as_secs_f64() == 0.0 {
            f64::INFINITY
        } else {
            row_mode.total.as_secs_f64() / col_mode.total.as_secs_f64()
        };
        rows.push(counter("speedup", name, "speedup", speedup));
        rows.push(counter(
            "columnar-rows",
            name,
            "columnar-rows",
            col_mode.columnar_rows as f64,
        ));
    }

    // Spill phase: the oversized budgeted batch, for the segment codec's compression numbers.
    let database_bytes = catalog.estimated_bytes();
    let budget = database_bytes / config.budget_divisor.max(2);
    let batch = oversized_batch(4);
    let mut epoch = EpochDag::with_memory_budget(budget);
    let pool = epoch.pool().expect("budgeted epoch has a pool").clone();
    let mut exec = Executor::with_pool(&catalog, pool.clone());
    for plan in &batch {
        epoch.submit(plan, &exec).expect("plan submits");
    }
    epoch.execute_pending(&mut exec, 1).expect("batch runs");
    let stats = pool.stats();
    assert!(
        stats.segment_bytes_raw > 0 && stats.segment_bytes_encoded > 0,
        "the budgeted batch must spill segments (raw {}, encoded {})",
        stats.segment_bytes_raw,
        stats.segment_bytes_encoded,
    );
    assert!(
        stats.segment_bytes_encoded < stats.segment_bytes_raw,
        "encoded segments ({}) must undercut raw row-codec bytes ({})",
        stats.segment_bytes_encoded,
        stats.segment_bytes_raw,
    );
    rows.push(counter(
        "spill-compression",
        "oversized",
        "segment-bytes-raw",
        stats.segment_bytes_raw as f64,
    ));
    rows.push(counter(
        "spill-compression",
        "oversized",
        "segment-bytes-encoded",
        stats.segment_bytes_encoded as f64,
    ));
    rows.push(counter(
        "spill-compression",
        "oversized",
        "encoded-over-raw",
        stats.segment_bytes_encoded as f64 / stats.segment_bytes_raw as f64,
    ));
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modes_agree_and_compression_holds_at_toy_scale() {
        // run() itself asserts byte-identity per workload and that encoded < raw; the test
        // checks the report shape and that the counters carry sensible values.
        let rows = run(&ColumnarBenchConfig {
            scale: 20,
            iters: 2,
            seed: 7,
            budget_divisor: 4,
        })
        .unwrap();
        // 3 workloads × (row, columnar, speedup, columnar-rows) + 3 compression counters.
        assert_eq!(rows.len(), 15);
        for x in ["select-heavy", "join-heavy", "aggregate-heavy"] {
            let of = |series: &str| {
                rows.iter()
                    .find(|r| r.series == series && r.x == x)
                    .unwrap_or_else(|| panic!("missing {series}/{x}"))
            };
            assert!(of("row").time > Duration::ZERO);
            assert!(of("columnar").time > Duration::ZERO);
            assert_eq!(of("speedup").kind, RowKind::Counter);
            assert!(of("speedup").extra.as_ref().unwrap().1 > 0.0);
            assert!(of("columnar-rows").extra.as_ref().unwrap().1 > 0.0);
        }
        let compression = |name: &str| {
            rows.iter()
                .find(|r| {
                    r.series == "spill-compression"
                        && r.extra.as_ref().is_some_and(|(n, _)| n == name)
                })
                .unwrap_or_else(|| panic!("missing {name}"))
                .extra
                .as_ref()
                .unwrap()
                .1
        };
        let ratio = compression("encoded-over-raw");
        assert!(ratio > 0.0 && ratio < 1.0, "ratio {ratio}");
    }
}
