//! # urm-bench
//!
//! The experiment harness that regenerates every table and figure of the paper's evaluation
//! (Section VIII).  The functions here are shared between the `paper-experiments` binary (which
//! prints the tables/series) and the Criterion benchmarks (which measure the same code paths).
//!
//! Every experiment is expressed as "run these algorithms on this scenario and report rows";
//! absolute numbers depend on the host and on the (scaled-down) synthetic data, but the
//! *relationships* the paper reports — who wins, by roughly what factor, and where the
//! crossovers are — are what these experiments reproduce.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod adaptive_bench;
pub mod columnar_bench;
pub mod dag_bench;
pub mod epoch_bench;
pub mod executor_bench;
pub mod experiments;
pub mod http_bench;
pub mod obs_bench;
pub mod report;
pub mod shard_bench;
pub mod spill_bench;

pub use adaptive_bench::AdaptiveBenchConfig;
pub use columnar_bench::ColumnarBenchConfig;
pub use dag_bench::DagBenchConfig;
pub use epoch_bench::EpochBenchConfig;
pub use executor_bench::ExecutorBenchConfig;
pub use experiments::{ExperimentRow, Harness, HarnessConfig, RowKind};
pub use http_bench::HttpBenchConfig;
pub use obs_bench::ObsBenchConfig;
pub use report::{render_json, render_table};
pub use shard_bench::ShardBenchConfig;
pub use spill_bench::SpillBenchConfig;
