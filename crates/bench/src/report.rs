//! Rendering experiment rows as text tables.

use crate::experiments::{ExperimentRow, RowKind};
use std::collections::BTreeMap;

/// Renders the rows of one experiment as a markdown-ish table: one line per x value, one column
/// per series, cells showing `time_ms (operators)`.
#[must_use]
pub fn render_table(experiment: &str, rows: &[ExperimentRow]) -> String {
    let rows: Vec<&ExperimentRow> = rows.iter().filter(|r| r.experiment == experiment).collect();
    if rows.is_empty() {
        return format!("(no rows for {experiment})\n");
    }
    let mut series: Vec<String> = Vec::new();
    let mut xs: Vec<String> = Vec::new();
    for r in &rows {
        if !series.contains(&r.series) {
            series.push(r.series.clone());
        }
        if !xs.contains(&r.x) {
            xs.push(r.x.clone());
        }
    }
    let mut cells: BTreeMap<(String, String), String> = BTreeMap::new();
    for r in &rows {
        let cell = if let Some((name, value)) = &r.extra {
            format!("{name}={value:.3}")
        } else {
            format!(
                "{:.1}ms ({} ops)",
                r.time.as_secs_f64() * 1000.0,
                r.source_operators
            )
        };
        cells.insert((r.x.clone(), r.series.clone()), cell);
    }

    let mut out = String::new();
    out.push_str(&format!("## {experiment}\n\n"));
    out.push_str(&format!("| x | {} |\n", series.join(" | ")));
    out.push_str(&format!("|---|{}\n", "---|".repeat(series.len())));
    for x in &xs {
        let mut line = format!("| {x} |");
        for s in &series {
            let cell = cells
                .get(&(x.clone(), s.clone()))
                .cloned()
                .unwrap_or_else(|| "-".to_string());
            line.push_str(&format!(" {cell} |"));
        }
        out.push_str(&line);
        out.push('\n');
    }
    out.push('\n');
    out
}

/// Escapes a string for inclusion in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders one row as a flat JSON object (one `BENCH_service.json`-compatible row).
///
/// [`RowKind::Counter`] rows emit `"kind":"counter"` with the counter's name and value and
/// *no* timing fields — previously they masqueraded as measurements with `time_ms: 0.000`
/// filler, which downstream tooling had to know to skip.  Timing rows keep their historical
/// shape (plus `"kind":"timing"`), including the legacy `extra_name`/`extra_value` pair when
/// a derived metric rides along.
#[must_use]
pub fn render_row_json(row: &ExperimentRow) -> String {
    if row.kind == RowKind::Counter {
        let (name, value) = row
            .extra
            .as_ref()
            .map_or(("", 0.0), |(n, v)| (n.as_str(), *v));
        return format!(
            "{{\"experiment\":\"{}\",\"series\":\"{}\",\"x\":\"{}\",\"kind\":\"counter\",\
             \"counter\":\"{}\",\"value\":{value}}}",
            json_escape(&row.experiment),
            json_escape(&row.series),
            json_escape(&row.x),
            json_escape(name),
        );
    }
    let extra = match &row.extra {
        Some((name, value)) => {
            format!(
                ",\"extra_name\":\"{}\",\"extra_value\":{value}",
                json_escape(name)
            )
        }
        None => String::new(),
    };
    format!(
        "{{\"experiment\":\"{}\",\"series\":\"{}\",\"x\":\"{}\",\"kind\":\"timing\",\
         \"time_ms\":{:.3},\"source_operators\":{},\"answers\":{}{extra}}}",
        json_escape(&row.experiment),
        json_escape(&row.series),
        json_escape(&row.x),
        row.time.as_secs_f64() * 1000.0,
        row.source_operators,
        row.answers,
    )
}

/// Renders every row as a machine-readable JSON array (one object per row, one row per line),
/// emitted by the `paper_experiments` binary alongside the text tables.
#[must_use]
pub fn render_json(rows: &[ExperimentRow]) -> String {
    let mut out = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&render_row_json(row));
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Renders every experiment present in `rows`, in first-appearance order.
#[must_use]
pub fn render_all(rows: &[ExperimentRow]) -> String {
    let mut experiments: Vec<String> = Vec::new();
    for r in rows {
        if !experiments.contains(&r.experiment) {
            experiments.push(r.experiment.clone());
        }
    }
    experiments
        .iter()
        .map(|e| render_table(e, rows))
        .collect::<Vec<_>>()
        .join("")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn row(exp: &str, series: &str, x: &str, ms: u64, ops: u64) -> ExperimentRow {
        ExperimentRow {
            experiment: exp.into(),
            series: series.into(),
            x: x.into(),
            kind: RowKind::Timing,
            time: Duration::from_millis(ms),
            source_operators: ops,
            answers: 1,
            extra: None,
        }
    }

    #[test]
    fn renders_series_as_columns() {
        let rows = vec![
            row("fig11a", "e-basic", "Q1", 12, 30),
            row("fig11a", "q-sharing", "Q1", 9, 20),
            row("fig11a", "e-basic", "Q2", 20, 50),
        ];
        let table = render_table("fig11a", &rows);
        assert!(table.contains("| Q1 |"));
        assert!(table.contains("e-basic"));
        assert!(table.contains("q-sharing"));
        assert!(table.contains("12.0ms (30 ops)"));
        assert!(table.contains(" - |"), "missing cell should render as '-'");
    }

    #[test]
    fn extra_metrics_render_by_name() {
        let mut r = row("fig9", "o-ratio", "100", 0, 0);
        r.extra = Some(("o-ratio".into(), 0.789));
        let table = render_table("fig9", &[r]);
        assert!(table.contains("o-ratio=0.789"));
    }

    #[test]
    fn unknown_experiment_renders_placeholder() {
        assert!(render_table("nope", &[]).contains("no rows"));
    }

    #[test]
    fn render_all_covers_every_experiment() {
        let rows = vec![row("a", "s", "1", 1, 1), row("b", "s", "1", 1, 1)];
        let text = render_all(&rows);
        assert!(text.contains("## a"));
        assert!(text.contains("## b"));
    }

    #[test]
    fn json_rows_are_flat_objects() {
        let mut r = row("service", "batched service", "50", 12, 129);
        r.answers = 7;
        let json = render_row_json(&r);
        assert!(json.contains("\"experiment\":\"service\""));
        assert!(json.contains("\"series\":\"batched service\""));
        assert!(json.contains("\"time_ms\":12.000"));
        assert!(json.contains("\"source_operators\":129"));
        assert!(json.contains("\"answers\":7"));
        assert!(!json.contains("extra_name"));

        r.extra = Some(("plan-hit-rate".into(), 0.5));
        let json = render_row_json(&r);
        assert!(json.contains("\"kind\":\"timing\""));
        assert!(json.contains("\"extra_name\":\"plan-hit-rate\""));
        assert!(json.contains("\"extra_value\":0.5"));
    }

    #[test]
    fn counter_rows_emit_no_timing_filler() {
        let r = ExperimentRow::counter("spill", "sizing", "oversized", "budget-bytes", 4096.0);
        let json = render_row_json(&r);
        assert!(json.contains("\"kind\":\"counter\""));
        assert!(json.contains("\"counter\":\"budget-bytes\""));
        assert!(json.contains("\"value\":4096"));
        assert!(
            !json.contains("time_ms") && !json.contains("source_operators"),
            "counter rows must not carry timing filler: {json}"
        );
        // The text tables render counters by name, like the legacy extra cells.
        let table = render_table("spill", &[r]);
        assert!(table.contains("budget-bytes=4096.000"));
    }

    #[test]
    fn json_document_is_an_array_with_one_row_per_line() {
        let rows = vec![row("a", "s", "1", 1, 1), row("b", "s", "2", 2, 2)];
        let json = render_json(&rows);
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("]\n"));
        assert_eq!(json.lines().count(), 4); // [, two rows, ]
        assert!(json.lines().nth(1).unwrap().ends_with(','));
        assert!(!json.lines().nth(2).unwrap().ends_with(','));
    }

    #[test]
    fn json_escapes_special_characters() {
        let mut r = row("quote\"", "back\\slash", "tab\there", 1, 1);
        r.extra = None;
        let json = render_row_json(&r);
        assert!(json.contains("quote\\\""));
        assert!(json.contains("back\\\\slash"));
        assert!(json.contains("tab\\there"));
    }
}
