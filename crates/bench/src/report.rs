//! Rendering experiment rows as text tables.

use crate::experiments::ExperimentRow;
use std::collections::BTreeMap;

/// Renders the rows of one experiment as a markdown-ish table: one line per x value, one column
/// per series, cells showing `time_ms (operators)`.
#[must_use]
pub fn render_table(experiment: &str, rows: &[ExperimentRow]) -> String {
    let rows: Vec<&ExperimentRow> = rows.iter().filter(|r| r.experiment == experiment).collect();
    if rows.is_empty() {
        return format!("(no rows for {experiment})\n");
    }
    let mut series: Vec<String> = Vec::new();
    let mut xs: Vec<String> = Vec::new();
    for r in &rows {
        if !series.contains(&r.series) {
            series.push(r.series.clone());
        }
        if !xs.contains(&r.x) {
            xs.push(r.x.clone());
        }
    }
    let mut cells: BTreeMap<(String, String), String> = BTreeMap::new();
    for r in &rows {
        let cell = if let Some((name, value)) = &r.extra {
            format!("{name}={value:.3}")
        } else {
            format!("{:.1}ms ({} ops)", r.time.as_secs_f64() * 1000.0, r.source_operators)
        };
        cells.insert((r.x.clone(), r.series.clone()), cell);
    }

    let mut out = String::new();
    out.push_str(&format!("## {experiment}\n\n"));
    out.push_str(&format!("| x | {} |\n", series.join(" | ")));
    out.push_str(&format!("|---|{}\n", "---|".repeat(series.len())));
    for x in &xs {
        let mut line = format!("| {x} |");
        for s in &series {
            let cell = cells
                .get(&(x.clone(), s.clone()))
                .cloned()
                .unwrap_or_else(|| "-".to_string());
            line.push_str(&format!(" {cell} |"));
        }
        out.push_str(&line);
        out.push('\n');
    }
    out.push('\n');
    out
}

/// Renders every experiment present in `rows`, in first-appearance order.
#[must_use]
pub fn render_all(rows: &[ExperimentRow]) -> String {
    let mut experiments: Vec<String> = Vec::new();
    for r in rows {
        if !experiments.contains(&r.experiment) {
            experiments.push(r.experiment.clone());
        }
    }
    experiments
        .iter()
        .map(|e| render_table(e, rows))
        .collect::<Vec<_>>()
        .join("")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn row(exp: &str, series: &str, x: &str, ms: u64, ops: u64) -> ExperimentRow {
        ExperimentRow {
            experiment: exp.into(),
            series: series.into(),
            x: x.into(),
            time: Duration::from_millis(ms),
            source_operators: ops,
            answers: 1,
            extra: None,
        }
    }

    #[test]
    fn renders_series_as_columns() {
        let rows = vec![
            row("fig11a", "e-basic", "Q1", 12, 30),
            row("fig11a", "q-sharing", "Q1", 9, 20),
            row("fig11a", "e-basic", "Q2", 20, 50),
        ];
        let table = render_table("fig11a", &rows);
        assert!(table.contains("| Q1 |"));
        assert!(table.contains("e-basic"));
        assert!(table.contains("q-sharing"));
        assert!(table.contains("12.0ms (30 ops)"));
        assert!(table.contains(" - |"), "missing cell should render as '-'");
    }

    #[test]
    fn extra_metrics_render_by_name() {
        let mut r = row("fig9", "o-ratio", "100", 0, 0);
        r.extra = Some(("o-ratio".into(), 0.789));
        let table = render_table("fig9", &[r]);
        assert!(table.contains("o-ratio=0.789"));
    }

    #[test]
    fn unknown_experiment_renders_placeholder() {
        assert!(render_table("nope", &[]).contains("no rows"));
    }

    #[test]
    fn render_all_covers_every_experiment() {
        let rows = vec![row("a", "s", "1", 1, 1), row("b", "s", "1", 1, 1)];
        let text = render_all(&rows);
        assert!(text.contains("## a"));
        assert!(text.contains("## b"));
    }
}
