//! Scatter-gather shard micro-benchmark: one batch over 1 vs. 2 vs. 4 partitioned shard
//! runtimes.
//!
//! The benchmark replays the two service workload shapes that stress the scatter path — the
//! join-heavy batch (`join:N` fan-outs plus the multi-join Table III queries) and the skewed
//! batch (`skew:N` Zipf self-joins) — against one generated Excel scenario.  Each timed series
//! rebuilds a fresh [`ShardSet`] per iteration (cold partition + bind + execute, the
//! registration-to-answer path a new epoch pays) and gives the run `shards` scheduler workers,
//! so every shard executes on exactly one thread: the measured speedup is pure scatter-gather
//! parallelism, not intra-shard scheduling.
//!
//! * **byte identity first**: before any timing, every workload runs once unsharded and once
//!   per shard count × partition scheme (hash and range), and the answers are compared bit for
//!   bit in canonical sorted order; a single diverging row panics, failing the CI step.
//! * the emitted rows (`BENCH_shard.json`) carry the per-shard-count timings plus `fanouts`,
//!   `merge-time-ms`, `speedup-2`/`speedup-4` and `hardware-threads`; CI gates
//!   `speedup-4 ≥ 1.3` on runners with ≥ 4 hardware threads (printed as `n/a` elsewhere).

use crate::experiments::{ExperimentRow, RowKind};
use std::time::{Duration, Instant};
use urm_core::{
    evaluate_batch, evaluate_batch_sharded, BatchOptions, CoreResult, ProbabilisticAnswer,
    ShardSet, TargetQuery,
};
use urm_datagen::replay::{join_heavy_workload, skewed_workload};
use urm_datagen::scenario::{Scenario, ScenarioConfig, TargetSchemaKind};
use urm_storage::ShardScheme;

/// The shard counts every workload is identity-checked and timed at.
pub const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// Configuration of one shard micro-benchmark run.
#[derive(Debug, Clone, Copy)]
pub struct ShardBenchConfig {
    /// Scenario scale factor (as `urm-cli --scale`).
    pub scale: usize,
    /// Possible mappings per scenario (as `urm-cli --mappings`).
    pub mappings: usize,
    /// Requests per workload batch.
    pub queries: usize,
    /// Timed iterations per shard count.
    pub iters: usize,
    /// Data-generation seed.
    pub seed: u64,
}

impl Default for ShardBenchConfig {
    fn default() -> Self {
        ShardBenchConfig {
            scale: 60,
            mappings: 30,
            queries: 12,
            iters: 3,
            seed: 42,
        }
    }
}

fn assert_bit_identical(a: &ProbabilisticAnswer, b: &ProbabilisticAnswer, context: &str) {
    let (sa, sb) = (a.sorted(), b.sorted());
    assert_eq!(sa.len(), sb.len(), "{context}: answer cardinality");
    for ((t1, p1), (t2, p2)) in sa.iter().zip(&sb) {
        assert_eq!(t1, t2, "{context}: tuples");
        assert_eq!(p1.to_bits(), p2.to_bits(), "{context}: probabilities");
    }
}

fn timing_row(series: &str, workload: &str, total: Duration, answers: usize) -> ExperimentRow {
    ExperimentRow {
        experiment: "shard".into(),
        series: series.into(),
        x: workload.into(),
        kind: RowKind::Timing,
        time: total,
        source_operators: 0,
        answers,
        extra: None,
    }
}

fn counter_row(series: &str, workload: &str, name: &str, value: f64) -> ExperimentRow {
    ExperimentRow::counter("shard", series, workload, name, value)
}

/// Runs the micro-benchmark, returning `BENCH_shard.json`-ready rows.
///
/// # Panics
/// Panics (failing the CI step) when a sharded answer — any workload, shard count or partition
/// scheme — diverges from the unsharded answer by a single row or probability bit, or when a
/// timed sharded batch dispatched no work to its shards.
pub fn run(config: &ShardBenchConfig) -> CoreResult<Vec<ExperimentRow>> {
    let scenario = Scenario::generate(&ScenarioConfig {
        target: TargetSchemaKind::Excel,
        scale: config.scale.max(1),
        mappings: config.mappings.max(1),
        seed: config.seed,
    })?;
    let catalog = &scenario.catalog;
    let mappings = &scenario.mappings;
    let iters = config.iters.max(1);
    let requests = config.queries.max(1);
    let workloads = [
        ("joinheavy", join_heavy_workload(requests)),
        ("skewed", skewed_workload(requests)),
    ];

    let mut rows = Vec::new();
    let mut identity_rounds = 0u64;
    for (workload, entries) in &workloads {
        let queries: Vec<TargetQuery> = entries.iter().map(|e| e.query.clone()).collect();

        // Correctness first: the unsharded batch is the reference; every shard count and both
        // partition schemes must reproduce it bit for bit before any timing happens.
        let single = evaluate_batch(&queries, mappings, catalog, &BatchOptions::sequential())?;
        for shards in SHARD_COUNTS {
            for scheme in [ShardScheme::Hash, ShardScheme::Range] {
                let set = ShardSet::new(catalog, shards, scheme, None);
                let sharded = evaluate_batch_sharded(
                    &queries,
                    mappings,
                    catalog,
                    &BatchOptions::parallel(shards),
                    &set,
                )?;
                for ((query, a), b) in queries
                    .iter()
                    .zip(&single.evaluations)
                    .zip(&sharded.batch.evaluations)
                {
                    assert_bit_identical(
                        &a.answer,
                        &b.answer,
                        &format!("{workload}: {} × {shards} {scheme} shards", query.name()),
                    );
                }
                identity_rounds += 1;
            }
        }
        let answers: usize = single.evaluations.iter().map(|e| e.answer.len()).sum();

        // Timed: the unsharded reference path, then each shard count cold — a fresh hash-cut
        // ShardSet per iteration, one scheduler worker per shard.
        let start = Instant::now();
        for _ in 0..iters {
            evaluate_batch(&queries, mappings, catalog, &BatchOptions::sequential())?;
        }
        rows.push(timing_row("single", workload, start.elapsed(), answers));

        let mut times = Vec::with_capacity(SHARD_COUNTS.len());
        let (mut fanouts, mut merge_time) = (0u64, Duration::ZERO);
        for shards in SHARD_COUNTS {
            let start = Instant::now();
            for _ in 0..iters {
                let set = ShardSet::new(catalog, shards, ShardScheme::Hash, None);
                let sharded = evaluate_batch_sharded(
                    &queries,
                    mappings,
                    catalog,
                    &BatchOptions::parallel(shards),
                    &set,
                )?;
                assert!(
                    sharded.shards.fanouts > 0,
                    "{workload}: sharded batch dispatched no work at {shards} shards"
                );
                if shards == SHARD_COUNTS[SHARD_COUNTS.len() - 1] {
                    fanouts += sharded.shards.fanouts;
                    merge_time += sharded.shards.merge_time;
                }
            }
            let elapsed = start.elapsed();
            rows.push(timing_row(
                &format!("shards-{shards}"),
                workload,
                elapsed,
                answers,
            ));
            times.push(elapsed);
        }
        let speedup = |i: usize| times[0].as_secs_f64() / times[i].as_secs_f64().max(f64::EPSILON);
        rows.push(counter_row(workload, workload, "fanouts", fanouts as f64));
        rows.push(counter_row(
            workload,
            workload,
            "merge-time-ms",
            merge_time.as_secs_f64() * 1e3,
        ));
        rows.push(counter_row(workload, workload, "speedup-2", speedup(1)));
        rows.push(counter_row(workload, workload, "speedup-4", speedup(2)));
    }

    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    rows.push(counter_row(
        "identity",
        "all",
        "rounds-verified",
        identity_rounds as f64,
    ));
    rows.push(counter_row(
        "env",
        "all",
        "hardware-threads",
        threads as f64,
    ));
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_bench_gates_hold_at_toy_scale() {
        let rows = run(&ShardBenchConfig {
            scale: 8,
            mappings: 6,
            queries: 6,
            iters: 1,
            seed: 7,
        })
        .unwrap();
        // 2 workloads × (4 timing rows + 4 counters) + identity + env.
        assert_eq!(rows.len(), 18);
        let extra = |series: &str, name: &str| -> f64 {
            let row = rows
                .iter()
                .find(|r| r.series == series && r.extra.as_ref().is_some_and(|(n, _)| n == name))
                .unwrap_or_else(|| panic!("missing {series}/{name}"));
            assert_eq!(row.kind, RowKind::Counter, "{series}/{name}");
            row.extra.as_ref().unwrap().1
        };
        // run() itself bit-compares every sharded answer against the unsharded reference; here
        // we check the emitted counters carry that evidence (speedup ratios are
        // host-dependent and gated in CI instead).
        let expected_rounds = (2 * SHARD_COUNTS.len() * 2) as f64;
        assert_eq!(extra("identity", "rounds-verified"), expected_rounds);
        assert!(extra("env", "hardware-threads") >= 1.0);
        for workload in ["joinheavy", "skewed"] {
            assert!(extra(workload, "fanouts") > 0.0, "{workload} fanouts");
            assert!(extra(workload, "merge-time-ms") >= 0.0);
            assert!(extra(workload, "speedup-2") > 0.0);
            assert!(extra(workload, "speedup-4") > 0.0);
            let timing = |series: &str| {
                rows.iter()
                    .find(|r| r.series == series && r.x == workload && r.kind == RowKind::Timing)
                    .unwrap_or_else(|| panic!("missing {workload}/{series} timing"))
            };
            let baseline = timing("single").answers;
            assert!(baseline > 0, "{workload} must produce answers");
            for shards in SHARD_COUNTS {
                assert_eq!(
                    timing(&format!("shards-{shards}")).answers,
                    baseline,
                    "{workload} shards-{shards} answers diverged"
                );
            }
        }
    }
}
