//! Observability-overhead micro-benchmark: what tracing costs the batch hot path.
//!
//! Three series evaluate the same join-heavy batch through [`evaluate_batch`]:
//!
//! * **baseline** — the default [`BatchOptions`] (tracer disabled, as every non-traced
//!   production batch runs);
//! * **off** — identical options with the disabled tracer set explicitly: an A/A comparison
//!   proving the tracing *hooks* (span construction, tag calls, the per-node guard in the DAG
//!   scheduler) are free when no trace is active.  CI gates `ratio-off ≤ 1.03`;
//! * **sampled** — one evaluation in [`SAMPLE_EVERY`] runs with a live tracer (the
//!   `--trace-sample 16` production setting), the rest disabled.  CI gates
//!   `ratio-sampled ≤ 1.10`.
//!
//! Each round times [`EVALS_PER_ROUND`] evaluations back-to-back and the series keep their
//! **best** (minimum) round total — the standard defence against scheduler noise on shared CI
//! runners.  Rounds interleave the series so drift (thermal, page cache) hits all three
//! equally.  The emitted rows (`BENCH_obs.json`) carry the per-series timings, the two gated
//! ratios, and `spans-per-trace` as evidence the sampled series actually recorded spans.

use crate::experiments::{ExperimentRow, RowKind};
use std::time::{Duration, Instant};
use urm_core::{evaluate_batch, BatchOptions, CoreResult, TargetQuery};
use urm_datagen::replay::join_heavy_workload;
use urm_datagen::scenario::{Scenario, ScenarioConfig, TargetSchemaKind};
use urm_service::Tracer;

/// Evaluations per timed round (all three series run this many per round).
pub const EVALS_PER_ROUND: usize = 16;

/// The sampled series traces one evaluation in this many (the `--trace-sample 16` setting).
pub const SAMPLE_EVERY: usize = 16;

/// Configuration of one observability-overhead run.
#[derive(Debug, Clone, Copy)]
pub struct ObsBenchConfig {
    /// Scenario scale factor (as `urm-cli --scale`).
    pub scale: usize,
    /// Possible mappings per scenario (as `urm-cli --mappings`).
    pub mappings: usize,
    /// Queries per batch.
    pub queries: usize,
    /// Timed rounds per series (best round kept).
    pub rounds: usize,
    /// Data-generation seed.
    pub seed: u64,
}

impl Default for ObsBenchConfig {
    fn default() -> Self {
        ObsBenchConfig {
            scale: 12,
            mappings: 10,
            queries: 6,
            rounds: 2,
            seed: 42,
        }
    }
}

fn timing_row(series: &str, total: Duration, answers: usize) -> ExperimentRow {
    ExperimentRow {
        experiment: "obs".into(),
        series: series.into(),
        x: "joinheavy".into(),
        kind: RowKind::Timing,
        time: total,
        source_operators: 0,
        answers,
        extra: None,
    }
}

/// Runs the micro-benchmark, returning `BENCH_obs.json`-ready rows.
///
/// # Panics
/// Panics (failing the CI step) when the sampled series records no trace, or a traced
/// evaluation produces an empty span tree — overhead numbers for tracing that never happened
/// would gate nothing.
pub fn run(config: &ObsBenchConfig) -> CoreResult<Vec<ExperimentRow>> {
    let scenario = Scenario::generate(&ScenarioConfig {
        target: TargetSchemaKind::Excel,
        scale: config.scale.max(1),
        mappings: config.mappings.max(1),
        seed: config.seed,
    })?;
    let catalog = &scenario.catalog;
    let mappings = &scenario.mappings;
    let queries: Vec<TargetQuery> = join_heavy_workload(config.queries.max(1))
        .iter()
        .map(|e| e.query.clone())
        .collect();
    let rounds = config.rounds.max(1);
    let base = || BatchOptions::parallel(2);

    // Warm-up: one evaluation per shape, so first-touch costs (columnar conversion caches,
    // allocator growth) land outside every timed round.
    let warm = evaluate_batch(&queries, mappings, catalog, &base())?;
    let answers: usize = warm.evaluations.iter().map(|e| e.answer.len()).sum();
    evaluate_batch(
        &queries,
        mappings,
        catalog,
        &base().with_tracer(Tracer::enabled("warmup")),
    )?;

    let mut best = [Duration::MAX; 3]; // baseline, off, sampled
    let (mut traces, mut spans) = (0u64, 0u64);
    for round in 0..rounds {
        // Baseline: the default options, tracer untouched.
        let start = Instant::now();
        for _ in 0..EVALS_PER_ROUND {
            evaluate_batch(&queries, mappings, catalog, &base())?;
        }
        best[0] = best[0].min(start.elapsed());

        // Off: the disabled tracer set explicitly (A/A against the baseline).
        let off = base().with_tracer(Tracer::disabled());
        let start = Instant::now();
        for _ in 0..EVALS_PER_ROUND {
            evaluate_batch(&queries, mappings, catalog, &off)?;
        }
        best[1] = best[1].min(start.elapsed());

        // Sampled: one live trace per SAMPLE_EVERY evaluations, finished in the timed
        // region exactly as the service does.
        let start = Instant::now();
        let mut round_spans = 0u64;
        for i in 0..EVALS_PER_ROUND {
            if i % SAMPLE_EVERY == 0 {
                let tracer = Tracer::enabled(format!("obs-{round}-{i}"));
                evaluate_batch(
                    &queries,
                    mappings,
                    catalog,
                    &base().with_tracer(tracer.clone()),
                )?;
                let report = tracer.finish().expect("enabled tracer must report");
                assert!(
                    !report.spans().is_empty(),
                    "a traced evaluation recorded no spans"
                );
                round_spans += report.spans().len() as u64;
                traces += 1;
            } else {
                evaluate_batch(&queries, mappings, catalog, &base())?;
            }
        }
        best[2] = best[2].min(start.elapsed());
        spans += round_spans;
    }
    assert!(traces > 0, "the sampled series recorded no trace");

    let ratio = |i: usize| best[i].as_secs_f64() / best[0].as_secs_f64().max(f64::EPSILON);
    let counter = |series: &str, name: &str, value: f64| {
        ExperimentRow::counter("obs", series, "joinheavy", name, value)
    };
    Ok(vec![
        timing_row("baseline", best[0], answers),
        timing_row("off", best[1], answers),
        timing_row("sampled", best[2], answers),
        counter("off", "ratio-off", ratio(1)),
        counter("sampled", "ratio-sampled", ratio(2)),
        counter("sampled", "traces-recorded", traces as f64),
        counter("sampled", "spans-per-trace", spans as f64 / traces as f64),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_bench_rows_carry_the_gate_evidence() {
        let rows = run(&ObsBenchConfig {
            scale: 6,
            mappings: 4,
            queries: 4,
            rounds: 1,
            seed: 7,
        })
        .unwrap();
        assert_eq!(rows.len(), 7);
        let extra = |name: &str| -> f64 {
            let row = rows
                .iter()
                .find(|r| r.extra.as_ref().is_some_and(|(n, _)| n == name))
                .unwrap_or_else(|| panic!("missing counter {name}"));
            assert_eq!(row.kind, RowKind::Counter, "{name}");
            row.extra.as_ref().unwrap().1
        };
        // The ratios themselves are host-dependent and gated in CI; here we check the run
        // produced the evidence the gates read, and that tracing demonstrably happened.
        assert!(extra("ratio-off") > 0.0);
        assert!(extra("ratio-sampled") > 0.0);
        assert!(extra("traces-recorded") >= 1.0);
        assert!(
            extra("spans-per-trace") > 1.0,
            "traces must hold span trees"
        );
        for series in ["baseline", "off", "sampled"] {
            let row = rows
                .iter()
                .find(|r| r.series == series && r.kind == RowKind::Timing)
                .unwrap_or_else(|| panic!("missing {series} timing"));
            assert!(row.time > Duration::ZERO);
            assert!(row.answers > 0);
        }
    }
}
