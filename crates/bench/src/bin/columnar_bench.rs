//! Runs the columnar micro-benchmark (vectorized kernels vs. the row path, plus the spill
//! segment codec's compression) and writes `BENCH_columnar.json`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p urm-bench --bin columnar_bench \
//!     [--scale N] [--iters N] [--json PATH]
//! ```
//!
//! JSON goes to `BENCH_columnar.json` by default (`--json -` disables it).

use std::env;
use urm_bench::columnar_bench::{run, ColumnarBenchConfig};
use urm_bench::report;

fn main() {
    let args: Vec<String> = env::args().collect();
    let mut config = ColumnarBenchConfig::default();
    let parse = |flag: &str| -> Option<usize> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|pos| args.get(pos + 1))
            .and_then(|s| s.parse().ok())
    };
    if let Some(v) = parse("--scale") {
        config.scale = v;
    }
    if let Some(v) = parse("--iters") {
        config.iters = v;
    }
    let json_path = match args.iter().position(|a| a == "--json") {
        Some(pos) => match args.get(pos + 1) {
            Some(path) if !path.starts_with("--") => path.clone(),
            _ => {
                eprintln!("error: --json needs a path argument (use '--json -' to disable)");
                std::process::exit(1);
            }
        },
        None => "BENCH_columnar.json".to_string(),
    };

    eprintln!(
        "columnar micro-benchmark (scale={}, iters={}, seed={}) …",
        config.scale, config.iters, config.seed
    );
    let rows = run(&config).expect("micro-benchmark failed");
    println!("{}", report::render_table("columnar", &rows));
    for row in rows
        .iter()
        .filter(|r| r.series == "speedup" || r.series == "spill-compression")
    {
        if let Some((name, value)) = &row.extra {
            println!("{} {name}: {value:.3}", row.x);
        }
    }
    if json_path != "-" {
        std::fs::write(&json_path, report::render_json(&rows))
            .unwrap_or_else(|err| panic!("cannot write {json_path}: {err}"));
        eprintln!("wrote {json_path}");
    }
}
