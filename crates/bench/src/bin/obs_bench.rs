//! Runs the observability-overhead micro-benchmark (tracing off / A-A / sampled 1-in-16 on
//! the join-heavy batch) and writes `BENCH_obs.json`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p urm-bench --bin obs_bench \
//!     [--scale N] [--mappings N] [--queries N] [--rounds N] [--json PATH]
//! ```
//!
//! JSON goes to `BENCH_obs.json` by default (`--json -` disables it).  The run asserts that
//! the sampled series actually recorded traces with non-empty span trees; the overhead gates
//! (`ratio-off ≤ 1.03`, `ratio-sampled ≤ 1.10`) live in CI.

use std::env;
use urm_bench::obs_bench::{run, ObsBenchConfig};
use urm_bench::report;

fn main() {
    let args: Vec<String> = env::args().collect();
    let mut config = ObsBenchConfig::default();
    let parse = |flag: &str| -> Option<usize> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|pos| args.get(pos + 1))
            .and_then(|s| s.parse().ok())
    };
    if let Some(v) = parse("--scale") {
        config.scale = v;
    }
    if let Some(v) = parse("--mappings") {
        config.mappings = v;
    }
    if let Some(v) = parse("--queries") {
        config.queries = v;
    }
    if let Some(v) = parse("--rounds") {
        config.rounds = v;
    }
    let json_path = match args.iter().position(|a| a == "--json") {
        Some(pos) => match args.get(pos + 1) {
            Some(path) if !path.starts_with("--") => path.clone(),
            _ => {
                eprintln!("error: --json needs a path argument (use '--json -' to disable)");
                std::process::exit(1);
            }
        },
        None => "BENCH_obs.json".to_string(),
    };

    eprintln!(
        "observability-overhead micro-benchmark (scale={}, mappings={}, queries={}, rounds={}, seed={}) …",
        config.scale, config.mappings, config.queries, config.rounds, config.seed
    );
    let rows = run(&config).expect("micro-benchmark failed");
    println!("{}", report::render_table("obs", &rows));
    for row in &rows {
        if let Some((name, value)) = &row.extra {
            println!("{} {name}: {value:.3}", row.series);
        }
    }
    if json_path != "-" {
        std::fs::write(&json_path, report::render_json(&rows))
            .unwrap_or_else(|err| panic!("cannot write {json_path}: {err}"));
        eprintln!("wrote {json_path}");
    }
}
