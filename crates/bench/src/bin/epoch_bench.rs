//! Runs the per-epoch DAG micro-benchmark (cold batch vs. warm repeat batch vs. the
//! rebuild-every-batch baseline) and writes `BENCH_epoch.json`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p urm-bench --bin epoch_bench \
//!     [--scale N] [--queries N] [--iters N] [--workers N] [--json PATH]
//! ```
//!
//! JSON goes to `BENCH_epoch.json` by default (`--json -` disables it).

use std::env;
use urm_bench::epoch_bench::{run, EpochBenchConfig};
use urm_bench::report;

fn main() {
    let args: Vec<String> = env::args().collect();
    let mut config = EpochBenchConfig::default();
    let parse = |flag: &str| -> Option<usize> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|pos| args.get(pos + 1))
            .and_then(|s| s.parse().ok())
    };
    if let Some(v) = parse("--scale") {
        config.scale = v;
    }
    if let Some(v) = parse("--queries") {
        config.queries = v;
    }
    if let Some(v) = parse("--iters") {
        config.iters = v;
    }
    if let Some(v) = parse("--workers") {
        config.workers = v;
    }
    let json_path = match args.iter().position(|a| a == "--json") {
        Some(pos) => match args.get(pos + 1) {
            Some(path) if !path.starts_with("--") => path.clone(),
            _ => {
                eprintln!("error: --json needs a path argument (use '--json -' to disable)");
                std::process::exit(1);
            }
        },
        None => "BENCH_epoch.json".to_string(),
    };

    eprintln!(
        "epoch micro-benchmark (scale={}, queries={}, iters={}, workers={}, seed={}) …",
        config.scale, config.queries, config.iters, config.workers, config.seed
    );
    let rows = run(&config).expect("micro-benchmark failed");
    println!("{}", report::render_table("epoch", &rows));
    for row in &rows {
        if let Some((name, value)) = &row.extra {
            println!("{} {name}: {value:.2}", row.series);
        }
    }
    if json_path != "-" {
        std::fs::write(&json_path, report::render_json(&rows))
            .unwrap_or_else(|err| panic!("cannot write {json_path}: {err}"));
        eprintln!("wrote {json_path}");
    }
}
