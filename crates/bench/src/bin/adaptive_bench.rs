//! Runs the adaptive-execution micro-benchmark (static estimates vs. observed-cardinality
//! feedback on a skew-heavy join batch) and writes `BENCH_adaptive.json`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p urm-bench --bin adaptive_bench \
//!     [--scale N] [--queries N] [--iters N] [--workers N] [--json PATH]
//! ```
//!
//! JSON goes to `BENCH_adaptive.json` by default (`--json -` disables it).  The run itself
//! asserts that adaptive answers — cold and fed-back — are byte-identical to static ones and
//! that the warm batch actually consumed feedback (observed nodes, a flipped build side)
//! *before* any timing; a violated gate panics, failing the CI step.  The timing gate (warm
//! adaptive ≥ 1.2× warm static) lives in CI, conditional on multi-core hardware.

use std::env;
use urm_bench::adaptive_bench::{run, AdaptiveBenchConfig};
use urm_bench::report;

fn main() {
    let args: Vec<String> = env::args().collect();
    let mut config = AdaptiveBenchConfig::default();
    let parse = |flag: &str| -> Option<usize> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|pos| args.get(pos + 1))
            .and_then(|s| s.parse().ok())
    };
    if let Some(v) = parse("--scale") {
        config.scale = v;
    }
    if let Some(v) = parse("--queries") {
        config.queries = v;
    }
    if let Some(v) = parse("--iters") {
        config.iters = v;
    }
    if let Some(v) = parse("--workers") {
        config.workers = v;
    }
    let json_path = match args.iter().position(|a| a == "--json") {
        Some(pos) => match args.get(pos + 1) {
            Some(path) if !path.starts_with("--") => path.clone(),
            _ => {
                eprintln!("error: --json needs a path argument (use '--json -' to disable)");
                std::process::exit(1);
            }
        },
        None => "BENCH_adaptive.json".to_string(),
    };

    eprintln!(
        "adaptive micro-benchmark (scale={}, queries={}, iters={}, workers={}, seed={}) …",
        config.scale, config.queries, config.iters, config.workers, config.seed
    );
    let rows = run(&config).expect("micro-benchmark failed");
    println!("{}", report::render_table("adaptive", &rows));
    for row in &rows {
        if let Some((name, value)) = &row.extra {
            println!("{} {name}: {value:.2}", row.series);
        }
    }
    if json_path != "-" {
        std::fs::write(&json_path, report::render_json(&rows))
            .unwrap_or_else(|err| panic!("cannot write {json_path}: {err}"));
        eprintln!("wrote {json_path}");
    }
}
