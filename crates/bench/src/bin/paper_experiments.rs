//! Regenerates every table and figure of the paper's evaluation section (plus the serving-layer
//! experiment), prints them as text tables, and writes a machine-readable JSON copy.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p urm-bench --bin paper_experiments \
//!     [--tiny] [--scale N] [--mappings H] [--json PATH]
//! ```
//!
//! JSON goes to `BENCH_paper.json` by default (`--json -` disables it).

use std::env;
use urm_bench::experiments::{Harness, HarnessConfig};
use urm_bench::report;

fn main() {
    let args: Vec<String> = env::args().collect();
    let mut config = if args.iter().any(|a| a == "--tiny") {
        HarnessConfig::tiny()
    } else {
        HarnessConfig::default()
    };
    if let Some(pos) = args.iter().position(|a| a == "--scale") {
        if let Some(v) = args.get(pos + 1).and_then(|s| s.parse().ok()) {
            config.scale = v;
        }
    }
    if let Some(pos) = args.iter().position(|a| a == "--mappings") {
        if let Some(v) = args.get(pos + 1).and_then(|s| s.parse().ok()) {
            config.mappings = v;
        }
    }
    let json_path = match args.iter().position(|a| a == "--json") {
        Some(pos) => match args.get(pos + 1) {
            Some(path) if !path.starts_with("--") => path.clone(),
            _ => {
                eprintln!("error: --json needs a path argument (use '--json -' to disable)");
                std::process::exit(1);
            }
        },
        None => "BENCH_paper.json".to_string(),
    };

    eprintln!(
        "generating scenarios (scale={}, mappings={}, seed={}) …",
        config.scale, config.mappings, config.seed
    );
    let harness = Harness::new(config).expect("scenario generation failed");
    eprintln!("running experiments …");
    let rows = harness.run_all().expect("experiment run failed");
    println!("{}", report::render_all(&rows));
    if json_path != "-" {
        std::fs::write(&json_path, report::render_json(&rows))
            .unwrap_or_else(|err| panic!("cannot write {json_path}: {err}"));
        eprintln!("wrote {json_path}");
    }
    eprintln!("done: {} data points", rows.len());
}
