//! Regenerates every table and figure of the paper's evaluation section and prints them as
//! text tables.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p urm-bench --bin paper_experiments [--tiny] [--scale N] [--mappings H]
//! ```

use std::env;
use urm_bench::experiments::{Harness, HarnessConfig};
use urm_bench::report;

fn main() {
    let args: Vec<String> = env::args().collect();
    let mut config = if args.iter().any(|a| a == "--tiny") {
        HarnessConfig::tiny()
    } else {
        HarnessConfig::default()
    };
    if let Some(pos) = args.iter().position(|a| a == "--scale") {
        if let Some(v) = args.get(pos + 1).and_then(|s| s.parse().ok()) {
            config.scale = v;
        }
    }
    if let Some(pos) = args.iter().position(|a| a == "--mappings") {
        if let Some(v) = args.get(pos + 1).and_then(|s| s.parse().ok()) {
            config.mappings = v;
        }
    }

    eprintln!(
        "generating scenarios (scale={}, mappings={}, seed={}) …",
        config.scale, config.mappings, config.seed
    );
    let harness = Harness::new(config).expect("scenario generation failed");
    eprintln!("running experiments …");
    let rows = harness.run_all().expect("experiment run failed");
    println!("{}", report::render_all(&rows));
    eprintln!("done: {} data points", rows.len());
}
