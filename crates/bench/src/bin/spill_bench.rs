//! Runs the spill micro-benchmark (in-memory vs. byte-budget-constrained execution of an
//! oversized join-heavy batch) and writes `BENCH_spill.json`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p urm-bench --bin spill_bench \
//!     [--scale N] [--queries N] [--iters N] [--budget-divisor N] [--workers N] [--json PATH]
//! ```
//!
//! JSON goes to `BENCH_spill.json` by default (`--json -` disables it).  The run itself
//! asserts that budget-constrained answers are byte-identical to in-memory ones and that the
//! pool stayed under its budget — a violated gate panics, failing the CI step.

use std::env;
use urm_bench::report;
use urm_bench::spill_bench::{run, SpillBenchConfig};

fn main() {
    let args: Vec<String> = env::args().collect();
    let mut config = SpillBenchConfig::default();
    let parse = |flag: &str| -> Option<usize> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|pos| args.get(pos + 1))
            .and_then(|s| s.parse().ok())
    };
    if let Some(v) = parse("--scale") {
        config.scale = v;
    }
    if let Some(v) = parse("--queries") {
        config.queries = v;
    }
    if let Some(v) = parse("--iters") {
        config.iters = v;
    }
    if let Some(v) = parse("--budget-divisor") {
        config.budget_divisor = v;
    }
    if let Some(v) = parse("--workers") {
        config.workers = v;
    }
    let json_path = match args.iter().position(|a| a == "--json") {
        Some(pos) => match args.get(pos + 1) {
            Some(path) if !path.starts_with("--") => path.clone(),
            _ => {
                eprintln!("error: --json needs a path argument (use '--json -' to disable)");
                std::process::exit(1);
            }
        },
        None => "BENCH_spill.json".to_string(),
    };

    eprintln!(
        "spill micro-benchmark (scale={}, queries={}, iters={}, budget=1/{} of data, \
         workers={}, seed={}) …",
        config.scale,
        config.queries,
        config.iters,
        config.budget_divisor,
        config.workers,
        config.seed
    );
    let rows = run(&config).expect("micro-benchmark failed");
    println!("{}", report::render_table("spill", &rows));
    for row in &rows {
        if let Some((name, value)) = &row.extra {
            println!("{} {name}: {value:.0}", row.series);
        }
    }
    if json_path != "-" {
        std::fs::write(&json_path, report::render_json(&rows))
            .unwrap_or_else(|err| panic!("cannot write {json_path}: {err}"));
        eprintln!("wrote {json_path}");
    }
}
