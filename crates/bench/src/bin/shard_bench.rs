//! Runs the scatter-gather shard micro-benchmark (1 vs. 2 vs. 4 partitioned shard runtimes on
//! the join-heavy and skewed workloads) and writes `BENCH_shard.json`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p urm-bench --bin shard_bench \
//!     [--scale N] [--mappings N] [--queries N] [--iters N] [--json PATH]
//! ```
//!
//! JSON goes to `BENCH_shard.json` by default (`--json -` disables it).  The run itself
//! asserts that every sharded answer — each shard count, hash and range partitioning — is
//! byte-identical to the unsharded batch *before* any timing; a violated gate panics, failing
//! the CI step.  The timing gate (4-shard speedup ≥ 1.3× over 1 shard) lives in CI,
//! conditional on multi-core hardware.

use std::env;
use urm_bench::report;
use urm_bench::shard_bench::{run, ShardBenchConfig};

fn main() {
    let args: Vec<String> = env::args().collect();
    let mut config = ShardBenchConfig::default();
    let parse = |flag: &str| -> Option<usize> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|pos| args.get(pos + 1))
            .and_then(|s| s.parse().ok())
    };
    if let Some(v) = parse("--scale") {
        config.scale = v;
    }
    if let Some(v) = parse("--mappings") {
        config.mappings = v;
    }
    if let Some(v) = parse("--queries") {
        config.queries = v;
    }
    if let Some(v) = parse("--iters") {
        config.iters = v;
    }
    let json_path = match args.iter().position(|a| a == "--json") {
        Some(pos) => match args.get(pos + 1) {
            Some(path) if !path.starts_with("--") => path.clone(),
            _ => {
                eprintln!("error: --json needs a path argument (use '--json -' to disable)");
                std::process::exit(1);
            }
        },
        None => "BENCH_shard.json".to_string(),
    };

    eprintln!(
        "shard micro-benchmark (scale={}, mappings={}, queries={}, iters={}, seed={}) …",
        config.scale, config.mappings, config.queries, config.iters, config.seed
    );
    let rows = run(&config).expect("micro-benchmark failed");
    println!("{}", report::render_table("shard", &rows));
    for row in &rows {
        if let Some((name, value)) = &row.extra {
            println!("{} {name}: {value:.2}", row.series);
        }
    }
    if json_path != "-" {
        std::fs::write(&json_path, report::render_json(&rows))
            .unwrap_or_else(|err| panic!("cannot write {json_path}: {err}"));
        eprintln!("wrote {json_path}");
    }
}
