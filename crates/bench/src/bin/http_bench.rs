//! Runs the open-loop HTTP latency harness (Poisson arrivals against a real `urm-server` on
//! loopback, byte-identity check against an in-process replay, pipeline A/B) and writes
//! `BENCH_http.json`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p urm-bench --bin http_bench \
//!     [--scale N] [--mappings H] [--seed S] [--requests N] [--rate R] [--clients C]
//!     [--workers W] [--attach ADDR] [--no-verify]
//!     [--ab-scale N] [--ab-mappings H] [--ab-batches B] [--ab-queries Q] [--ab-iters I]
//!     [--json PATH]
//! ```
//!
//! `--attach ADDR` drives an already-running server (started with the same
//! `--scale/--mappings/--seed`) instead of an in-process one; `--no-verify` skips the
//! byte-identity check (needed when the attached server serves a different scenario).  JSON
//! goes to `BENCH_http.json` by default (`--json -` disables it).

use std::env;
use urm_bench::http_bench::{run, HttpBenchConfig};
use urm_bench::report;

fn main() {
    let args: Vec<String> = env::args().collect();
    let mut config = HttpBenchConfig::default();
    let value = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|pos| args.get(pos + 1))
            .cloned()
    };
    let parse = |flag: &str| -> Option<usize> { value(flag).and_then(|s| s.parse().ok()) };
    if let Some(v) = parse("--scale") {
        config.scale = v;
    }
    if let Some(v) = parse("--mappings") {
        config.mappings = v;
    }
    if let Some(v) = parse("--seed") {
        config.seed = v as u64;
    }
    if let Some(v) = parse("--requests") {
        config.requests = v;
    }
    if let Some(v) = parse("--rate") {
        config.rate = v as f64;
    }
    if let Some(v) = parse("--clients") {
        config.clients = v;
    }
    if let Some(v) = parse("--workers") {
        config.workers = v;
    }
    if let Some(v) = parse("--ab-scale") {
        config.ab_scale = v;
    }
    if let Some(v) = parse("--ab-mappings") {
        config.ab_mappings = v;
    }
    if let Some(v) = parse("--ab-batches") {
        config.ab_batches = v;
    }
    if let Some(v) = parse("--ab-queries") {
        config.ab_queries = v;
    }
    if let Some(v) = parse("--ab-iters") {
        config.ab_iters = v;
    }
    if let Some(addr) = value("--attach") {
        config.attach = Some(addr);
    }
    if args.iter().any(|a| a == "--no-verify") {
        config.verify = false;
    }
    let json_path = match args.iter().position(|a| a == "--json") {
        Some(pos) => match args.get(pos + 1) {
            Some(path) if !path.starts_with("--") => path.clone(),
            _ => {
                eprintln!("error: --json needs a path argument (use '--json -' to disable)");
                std::process::exit(1);
            }
        },
        None => "BENCH_http.json".to_string(),
    };

    eprintln!(
        "http open-loop harness (scale={}, mappings={}, requests={}/phase, rate={}/s, \
         clients={}, workers={}, verify={}, ab: scale={} mappings={} {}×{} iters={}) …",
        config.scale,
        config.mappings,
        config.requests,
        config.rate,
        config.clients,
        config.workers,
        config.verify,
        config.ab_scale,
        config.ab_mappings,
        config.ab_batches,
        config.ab_queries,
        config.ab_iters,
    );
    let rows = run(&config).unwrap_or_else(|err| {
        eprintln!("error: {err}");
        std::process::exit(1);
    });
    println!("{}", report::render_table("http", &rows));
    for row in &rows {
        if let Some((name, value)) = &row.extra {
            println!("{} {name}: {value:.3}", row.series);
        }
    }
    if json_path != "-" {
        std::fs::write(&json_path, report::render_json(&rows))
            .unwrap_or_else(|err| panic!("cannot write {json_path}: {err}"));
        eprintln!("wrote {json_path}");
    }
}
