//! DAG-runtime micro-benchmark: the parallel shared-operator scheduler vs. the PR 2 sequential
//! shared path on a join-heavy batch.
//!
//! A batch of join-heavy plans (the shape of the reformulated `workloads/joinheavy.txt`
//! requests: one shared `Orders` scan fanning out into independent selective hash joins with
//! `LineItem`) is executed three ways over a generated source instance:
//!
//! * **shared-sequential** — the PR 2 path: every plan runs through one
//!   [`SharedPlanCache`](urm_mqo::SharedPlanCache), so distinct sub-plans execute once but one
//!   after another on a single thread;
//! * **dag-sequential** — the batch merged into one [`OperatorDag`], executed by the
//!   topological scheduler (same work, one scheduling layer);
//! * **dag-parallel** — the same merged DAG on `workers` scoped threads: independent join
//!   nodes run concurrently while the shared scans still execute once.
//!
//! All three produce byte-identical root results (asserted).  The report rows carry per-mode
//! times, the parallel-over-shared-sequential speedup, and the DAG's node-dedup counters, and
//! are written to `BENCH_dag.json` by the `dag_bench` binary so the scaling trajectory of the
//! scheduler is tracked from PR to PR.

use crate::experiments::{ExperimentRow, RowKind};
use std::time::{Duration, Instant};
use urm_core::CoreResult;
use urm_datagen::source::generate_source;
use urm_engine::{CompareOp, DagScheduler, Executor, OperatorDag, Plan, Predicate};
use urm_mqo::SharedPlanCache;
use urm_storage::{Catalog, Relation, Value};

/// Configuration of one DAG micro-benchmark run.
#[derive(Debug, Clone, Copy)]
pub struct DagBenchConfig {
    /// Source-instance scale factor (`Orders` gets `2 × scale` rows, `LineItem` `4 × scale`).
    pub scale: usize,
    /// Number of join-heavy queries in the batch.
    pub queries: usize,
    /// Timed iterations per mode.
    pub iters: usize,
    /// Data-generation seed.
    pub seed: u64,
    /// Worker threads for the parallel mode.
    pub workers: usize,
}

impl Default for DagBenchConfig {
    fn default() -> Self {
        DagBenchConfig {
            scale: 900,
            queries: 12,
            iters: 20,
            seed: 42,
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .clamp(2, 4),
        }
    }
}

/// The join-heavy batch: every query shares the `Orders`/`LineItem` scans and contributes one
/// independent (differently filtered) hash join — maximal fan-out, independent heavy nodes.
/// The per-query `clerk` predicate makes each join node distinct (the generated `Orders` data
/// spreads clerks over `clerk0`–`clerk49`), so a batch of `n` queries has `n` independent
/// joins to schedule while the two scans stay shared.  (Also the workload of the
/// [`epoch_bench`](crate::epoch_bench) cold/warm experiment.)
pub fn joinheavy_batch(queries: usize) -> Vec<Plan> {
    (0..queries)
        .map(|i| {
            Plan::scan("Orders")
                .select(Predicate::compare(
                    "Orders.clerk",
                    CompareOp::Ne,
                    Value::from(format!("clerk{}", i % 50)),
                ))
                .hash_join(
                    Plan::scan("LineItem"),
                    vec![("Orders.orderNum".into(), "LineItem.itemOrderNum".into())],
                )
                .select(Predicate::compare(
                    "LineItem.quantity",
                    CompareOp::Gt,
                    Value::from((i % 7) as i64),
                ))
                .project(vec!["Orders.clerk".into(), "LineItem.extendedPrice".into()])
        })
        .collect()
}

struct Measurement {
    total: Duration,
    answers: Vec<usize>,
    rows_processed: u64,
}

impl Measurement {
    fn rows_per_second(&self) -> f64 {
        let secs = self.total.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.rows_processed as f64 / secs
        }
    }

    fn row(&self, series: &str) -> ExperimentRow {
        ExperimentRow {
            experiment: "dag".into(),
            series: series.into(),
            x: "joinheavy".into(),
            kind: RowKind::Timing,
            time: self.total,
            source_operators: 0,
            answers: self.answers.iter().sum(),
            extra: Some(("rows-per-sec".into(), self.rows_per_second())),
        }
    }
}

fn answer_sizes(results: &[std::sync::Arc<Relation>]) -> Vec<usize> {
    results.iter().map(|r| r.len()).collect()
}

/// The PR 2 sequential shared path: the service's pre-DAG convention — plans bound once, then
/// every batch execution resolves sharing through a fresh bounded `SharedPlanCache` (fingerprint
/// lookups + LRU bookkeeping per node, per execution).
fn measure_shared_sequential(
    catalog: &Catalog,
    physicals: &[std::sync::Arc<urm_engine::PhysicalPlan>],
    iters: usize,
) -> Measurement {
    let mut exec = Executor::new(catalog);
    let mut answers = Vec::new();
    let start = Instant::now();
    for _ in 0..iters {
        // A fresh per-batch cache is the PR 2 production shape (the service bounded it at 512).
        let mut cache = SharedPlanCache::with_capacity(512);
        let mut results = Vec::with_capacity(physicals.len());
        for physical in physicals {
            results.push(
                cache
                    .execute_shared_physical(physical, &mut exec)
                    .expect("plan runs"),
            );
        }
        answers = answer_sizes(&results);
    }
    let total = start.elapsed();
    let stats = exec.stats();
    Measurement {
        total,
        answers,
        rows_processed: stats.tuples_read + stats.tuples_output,
    }
}

/// The merged-DAG path: sharing is decided once at build time (the graph edges), so each batch
/// execution is a pure scheduler walk — sequential or parallel by scheduler.
fn measure_dag(
    catalog: &Catalog,
    dag: &OperatorDag,
    iters: usize,
    scheduler: DagScheduler,
) -> (Measurement, usize) {
    let mut exec = Executor::new(catalog);
    let mut answers = Vec::new();
    let mut peak = 0usize;
    let start = Instant::now();
    for _ in 0..iters {
        let run = scheduler.execute(dag, &mut exec).expect("batch runs");
        answers = answer_sizes(&run.root_results);
        peak = peak.max(run.report.peak_parallelism);
    }
    let total = start.elapsed();
    let stats = exec.stats();
    let measurement = Measurement {
        total,
        answers,
        rows_processed: stats.tuples_read + stats.tuples_output,
    };
    (measurement, peak)
}

fn extra_row(series: &str, name: &str, value: f64) -> ExperimentRow {
    ExperimentRow {
        experiment: "dag".into(),
        series: series.into(),
        x: "joinheavy".into(),
        kind: RowKind::Timing,
        time: Duration::ZERO,
        source_operators: 0,
        answers: 0,
        extra: Some((name.into(), value)),
    }
}

/// Runs the micro-benchmark, returning `BENCH_dag.json`-ready rows.
pub fn run(config: &DagBenchConfig) -> CoreResult<Vec<ExperimentRow>> {
    let catalog = generate_source(config.scale, config.seed);
    let batch = joinheavy_batch(config.queries.max(1));
    let iters = config.iters.max(1);
    let workers = config.workers.max(2);

    // Bind once and build the merged DAG once — the steady-state shape of a hot batch (the
    // service binds/builds per batch; both paths get the same head start here, the difference
    // measured is how each *executes* the shared work).
    let binder = Executor::new(&catalog);
    let physicals: Vec<std::sync::Arc<urm_engine::PhysicalPlan>> = batch
        .iter()
        .map(|plan| binder.bind(plan).expect("plan binds"))
        .collect();
    let mut dag = OperatorDag::new();
    for physical in &physicals {
        dag.add_root(physical);
    }

    // Warm-up + correctness: all three modes must agree tuple-for-tuple.
    {
        let shared = measure_shared_sequential(&catalog, &physicals, 1);
        let (dag_seq, _) = measure_dag(&catalog, &dag, 1, DagScheduler::sequential());
        let (dag_par, _) = measure_dag(&catalog, &dag, 1, DagScheduler::with_workers(workers));
        assert_eq!(shared.answers, dag_seq.answers, "dag-sequential diverged");
        assert_eq!(shared.answers, dag_par.answers, "dag-parallel diverged");
    }

    let shared = measure_shared_sequential(&catalog, &physicals, iters);
    let (dag_seq, _) = measure_dag(&catalog, &dag, iters, DagScheduler::sequential());
    let (dag_par, peak) = measure_dag(&catalog, &dag, iters, DagScheduler::with_workers(workers));

    let speedup = |base: &Measurement, new: &Measurement| {
        if new.total.as_secs_f64() == 0.0 {
            f64::INFINITY
        } else {
            base.total.as_secs_f64() / new.total.as_secs_f64()
        }
    };
    let hardware_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // On a single hardware thread the parallel rows measure pure scheduler overhead + cache
    // thrash; a ~0.9× "speedup" there is noise, not a regression signal.  Mark the rows as
    // not applicable instead of reporting a misleading number.
    let speedup_row = |series: &str, base: &Measurement| {
        if hardware_threads == 1 {
            extra_row(series, "n/a (single hardware thread)", 0.0)
        } else {
            extra_row(series, "speedup", speedup(base, &dag_par))
        }
    };

    Ok(vec![
        shared.row("shared-sequential"),
        dag_seq.row("dag-sequential"),
        dag_par.row(&format!("dag-parallel-{workers}")),
        speedup_row("speedup-parallel-vs-shared", &shared),
        speedup_row("speedup-parallel-vs-dag-seq", &dag_seq),
        extra_row("dag-nodes", "distinct-nodes", dag.node_count() as f64),
        extra_row(
            "dag-dedup",
            "operators-reused",
            dag.operators_reused() as f64,
        ),
        extra_row("parallelism", "peak", peak as f64),
        extra_row("parallelism", "workers", workers as f64),
        extra_row(
            "host-parallelism",
            "hardware-threads",
            hardware_threads as f64,
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dag_bench_produces_consistent_rows() {
        let rows = run(&DagBenchConfig {
            scale: 12,
            queries: 6,
            iters: 2,
            seed: 7,
            workers: 2,
        })
        .unwrap();
        assert_eq!(rows.len(), 10);
        let of = |series: &str| {
            rows.iter()
                .find(|r| r.series == series)
                .unwrap_or_else(|| panic!("missing {series}"))
        };
        // run() itself asserts answer equality across modes; check the report shape.
        assert!(of("shared-sequential").time > Duration::ZERO);
        assert!(of("dag-sequential").time > Duration::ZERO);
        assert!(of("dag-parallel-2").time > Duration::ZERO);
        assert!(of("dag-nodes").extra.as_ref().unwrap().1 > 0.0);
        assert!(of("dag-dedup").extra.as_ref().unwrap().1 > 0.0);
        // 6 queries × 6 sub-plans each, but the two scans are shared by every query.
        let nodes = of("dag-nodes").extra.as_ref().unwrap().1 as usize;
        assert_eq!(nodes, 6 * 4 + 2, "unexpected sharing shape");
        // On a multi-core host the speedup row carries a positive ratio; on a single hardware
        // thread it must be marked not-applicable instead of reporting a misleading number.
        let (name, value) = of("speedup-parallel-vs-shared").extra.as_ref().unwrap();
        let single_core = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            == 1;
        if single_core {
            assert_eq!(name, "n/a (single hardware thread)");
            assert_eq!(*value, 0.0);
        } else {
            assert_eq!(name, "speedup");
            assert!(*value > 0.0);
        }
    }
}
