//! Experiment definitions, one per table/figure of the paper's evaluation.

use std::time::Duration;
use urm_core::CoreResult;
use urm_core::{evaluate, top_k, Algorithm, Strategy, TargetQuery};
use urm_datagen::scenario::{Scenario, ScenarioConfig, TargetSchemaKind};
use urm_datagen::workload::{self, QueryId};

/// How a row's payload is interpreted (and rendered by [`crate::report`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RowKind {
    /// A timed measurement: `time`, `source_operators` and `answers` are meaningful (and an
    /// optional `extra` metric may ride along, e.g. a rows-per-sec derived from the timing).
    #[default]
    Timing,
    /// A named counter (sizing, compression ratio, cache rate, …): the payload is `extra`
    /// (name, value) — the timing fields are unused and **not** emitted in the JSON report,
    /// so counter rows no longer masquerade as `time_ms: 0.000` measurements.
    Counter,
}

/// One measured data point: a row of a figure's series or of a table.
#[derive(Debug, Clone)]
pub struct ExperimentRow {
    /// Experiment identifier (`fig10b`, `table4`, …).
    pub experiment: String,
    /// The series / algorithm the point belongs to.
    pub series: String,
    /// The x-axis value (query id, database scale, number of mappings, k, …).
    pub x: String,
    /// Whether this row is a timed measurement or a named counter.
    pub kind: RowKind,
    /// Total evaluation time.
    pub time: Duration,
    /// Number of source operators executed.
    pub source_operators: u64,
    /// Number of distinct answer tuples produced.
    pub answers: usize,
    /// Extra metric (breakdown part, o-ratio, representative mappings…), if any; for
    /// [`RowKind::Counter`] rows this *is* the payload.
    pub extra: Option<(String, f64)>,
}

impl ExperimentRow {
    fn new(experiment: &str, series: &str, x: impl ToString) -> Self {
        ExperimentRow {
            experiment: experiment.to_string(),
            series: series.to_string(),
            x: x.to_string(),
            kind: RowKind::Timing,
            time: Duration::ZERO,
            source_operators: 0,
            answers: 0,
            extra: None,
        }
    }

    /// A first-class counter row: one named scalar, no timing fields.  Rendered as
    /// `name=value` in the text tables and as `"kind":"counter"` objects (name + value,
    /// no `time_ms` filler) in the JSON reports.
    #[must_use]
    pub fn counter(
        experiment: &str,
        series: &str,
        x: impl ToString,
        name: &str,
        value: f64,
    ) -> Self {
        let mut row = ExperimentRow::new(experiment, series, x);
        row.kind = RowKind::Counter;
        row.extra = Some((name.to_string(), value));
        row
    }
}

/// Scale knobs for a full harness run.
#[derive(Debug, Clone, Copy)]
pub struct HarnessConfig {
    /// Source-instance scale factor used by most experiments.
    pub scale: usize,
    /// Default number of possible mappings `h`.
    pub mappings: usize,
    /// Seed for data generation.
    pub seed: u64,
    /// Scale sweep used for the "database size" experiments.
    pub scale_sweep: [usize; 5],
    /// Mapping-count sweep used for the "number of mappings" experiments.
    pub mapping_sweep: [usize; 5],
    /// k values for the top-k experiment.
    pub k_sweep: [usize; 5],
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            scale: 60,
            mappings: 40,
            seed: 42,
            scale_sweep: [20, 40, 60, 80, 100],
            mapping_sweep: [10, 20, 30, 40, 50],
            k_sweep: [1, 5, 10, 15, 20],
        }
    }
}

impl HarnessConfig {
    /// A very small configuration for smoke tests and CI.
    #[must_use]
    pub fn tiny() -> Self {
        HarnessConfig {
            scale: 15,
            mappings: 8,
            seed: 7,
            scale_sweep: [5, 10, 15, 20, 25],
            mapping_sweep: [2, 4, 6, 8, 10],
            k_sweep: [1, 2, 3, 4, 5],
        }
    }
}

/// The experiment harness: generated scenarios for the three target schemas plus the knobs.
pub struct Harness {
    config: HarnessConfig,
    excel: Scenario,
    noris: Scenario,
    paragon: Scenario,
}

impl Harness {
    /// Generates the scenarios for all three target schemas.
    pub fn new(config: HarnessConfig) -> CoreResult<Self> {
        let build = |target| {
            Scenario::generate(&ScenarioConfig {
                target,
                scale: config.scale,
                mappings: config.mappings,
                seed: config.seed,
            })
        };
        Ok(Harness {
            config,
            excel: build(TargetSchemaKind::Excel)?,
            noris: build(TargetSchemaKind::Noris)?,
            paragon: build(TargetSchemaKind::Paragon)?,
        })
    }

    /// The harness configuration.
    #[must_use]
    pub fn config(&self) -> &HarnessConfig {
        &self.config
    }

    /// The scenario for a target schema.
    #[must_use]
    pub fn scenario(&self, target: TargetSchemaKind) -> &Scenario {
        match target {
            TargetSchemaKind::Excel => &self.excel,
            TargetSchemaKind::Noris => &self.noris,
            TargetSchemaKind::Paragon => &self.paragon,
        }
    }

    fn run_algorithm(
        &self,
        experiment: &str,
        series: &str,
        x: impl ToString,
        query: &TargetQuery,
        scenario: &Scenario,
        algorithm: Algorithm,
    ) -> CoreResult<ExperimentRow> {
        let eval = evaluate(query, &scenario.mappings, &scenario.catalog, algorithm)?;
        let mut row = ExperimentRow::new(experiment, series, x);
        row.time = eval.metrics.total_time;
        row.source_operators = eval.metrics.source_operators();
        row.answers = eval.answer.len();
        Ok(row)
    }

    /// Figure 9(a): o-ratio of the mapping set as the number of mappings grows.
    pub fn fig9_oratio(&self) -> CoreResult<Vec<ExperimentRow>> {
        let mut rows = Vec::new();
        for &h in &self.config.mapping_sweep {
            let scenario = self.excel.with_mappings(h);
            rows.push(ExperimentRow::counter(
                "fig9",
                "o-ratio",
                h,
                "o-ratio",
                scenario.mappings.o_ratio(),
            ));
        }
        Ok(rows)
    }

    /// Figure 10(a): breakdown of `basic` into evaluation and aggregation time for Q1–Q10.
    pub fn fig10a_breakdown(&self) -> CoreResult<Vec<ExperimentRow>> {
        let mut rows = Vec::new();
        for (id, query) in workload::all_queries() {
            let scenario = self.scenario(id.target());
            let eval = evaluate(
                &query,
                &scenario.mappings,
                &scenario.catalog,
                Algorithm::Basic,
            )?;
            let mut row = ExperimentRow::new("fig10a", "evaluation", format!("Q{}", id.number()));
            row.time = eval.metrics.evaluation_time();
            row.source_operators = eval.metrics.source_operators();
            row.answers = eval.answer.len();
            rows.push(row);
            let mut row = ExperimentRow::new("fig10a", "aggregation", format!("Q{}", id.number()));
            row.time = eval.metrics.aggregation_time;
            rows.push(row);
        }
        Ok(rows)
    }

    /// Figures 10(b)/(c): basic vs e-basic vs e-MQO over database size and number of mappings.
    pub fn fig10bc_simple_solutions(&self) -> CoreResult<Vec<ExperimentRow>> {
        let query = workload::query(QueryId::Q4);
        let algorithms = [Algorithm::Basic, Algorithm::EBasic, Algorithm::EMqo];
        let mut rows = Vec::new();
        // 10(b): database size sweep at the default mapping count.
        for &scale in &self.config.scale_sweep {
            let scenario = Scenario::generate(&ScenarioConfig {
                target: TargetSchemaKind::Excel,
                scale,
                mappings: self.config.mappings,
                seed: self.config.seed,
            })?;
            for algorithm in algorithms {
                rows.push(self.run_algorithm(
                    "fig10b",
                    algorithm.name(),
                    scale,
                    &query,
                    &scenario,
                    algorithm,
                )?);
            }
        }
        // 10(c): mapping-count sweep at the default scale.
        for &h in &self.config.mapping_sweep {
            let scenario = self.excel.with_mappings(h);
            for algorithm in algorithms {
                rows.push(self.run_algorithm(
                    "fig10c",
                    algorithm.name(),
                    h,
                    &query,
                    &scenario,
                    algorithm,
                )?);
            }
        }
        Ok(rows)
    }

    /// Figure 11(a): e-basic vs q-sharing vs o-sharing on all ten queries.
    pub fn fig11a_queries(&self) -> CoreResult<Vec<ExperimentRow>> {
        let algorithms = [
            Algorithm::EBasic,
            Algorithm::QSharing,
            Algorithm::OSharing(Strategy::Sef),
        ];
        let mut rows = Vec::new();
        for (id, query) in workload::all_queries() {
            let scenario = self.scenario(id.target());
            for algorithm in algorithms {
                rows.push(self.run_algorithm(
                    "fig11a",
                    algorithm.name(),
                    format!("Q{}", id.number()),
                    &query,
                    scenario,
                    algorithm,
                )?);
            }
        }
        Ok(rows)
    }

    /// Figures 11(b)/(c): e-basic vs q-sharing vs o-sharing over database size and mappings.
    pub fn fig11bc_sharing(&self) -> CoreResult<Vec<ExperimentRow>> {
        let query = workload::query(QueryId::Q4);
        let algorithms = [
            Algorithm::EBasic,
            Algorithm::QSharing,
            Algorithm::OSharing(Strategy::Sef),
        ];
        let mut rows = Vec::new();
        for &scale in &self.config.scale_sweep {
            let scenario = Scenario::generate(&ScenarioConfig {
                target: TargetSchemaKind::Excel,
                scale,
                mappings: self.config.mappings,
                seed: self.config.seed,
            })?;
            for algorithm in algorithms {
                rows.push(self.run_algorithm(
                    "fig11b",
                    algorithm.name(),
                    scale,
                    &query,
                    &scenario,
                    algorithm,
                )?);
            }
        }
        for &h in &self.config.mapping_sweep {
            let scenario = self.excel.with_mappings(h);
            for algorithm in algorithms {
                rows.push(self.run_algorithm(
                    "fig11c",
                    algorithm.name(),
                    h,
                    &query,
                    &scenario,
                    algorithm,
                )?);
            }
        }
        Ok(rows)
    }

    /// Figures 11(d)/(e): effect of the number of selection / Cartesian product operators.
    pub fn fig11de_query_size(&self) -> CoreResult<Vec<ExperimentRow>> {
        let algorithms = [
            Algorithm::EBasic,
            Algorithm::QSharing,
            Algorithm::OSharing(Strategy::Sef),
        ];
        let mut rows = Vec::new();
        for n in 1..=5usize {
            let query = workload::selection_sweep(n)?;
            for algorithm in algorithms {
                rows.push(self.run_algorithm(
                    "fig11d",
                    algorithm.name(),
                    n,
                    &query,
                    &self.excel,
                    algorithm,
                )?);
            }
        }
        for n in 1..=3usize {
            let query = workload::product_sweep(n)?;
            for algorithm in algorithms {
                rows.push(self.run_algorithm(
                    "fig11e",
                    algorithm.name(),
                    n,
                    &query,
                    &self.excel,
                    algorithm,
                )?);
            }
        }
        Ok(rows)
    }

    /// Figure 11(f) and Table IV: operator-selection strategies (Random / SNF / SEF), including
    /// the number of source operators executed, with e-MQO's operator count as the yardstick.
    pub fn fig11f_table4_strategies(&self) -> CoreResult<Vec<ExperimentRow>> {
        let mut rows = Vec::new();
        let strategies = [
            ("Random", Algorithm::OSharing(Strategy::Random { seed: 11 })),
            ("SNF", Algorithm::OSharing(Strategy::Snf)),
            ("SEF", Algorithm::OSharing(Strategy::Sef)),
        ];
        for (id, query) in workload::queries_for(TargetSchemaKind::Excel) {
            for (name, algorithm) in strategies {
                rows.push(self.run_algorithm(
                    "fig11f",
                    name,
                    format!("Q{}", id.number()),
                    &query,
                    &self.excel,
                    algorithm,
                )?);
            }
        }
        // Table IV: Q4 only, including e-MQO for the operator-count comparison.
        let q4 = workload::query(QueryId::Q4);
        for (name, algorithm) in strategies {
            rows.push(self.run_algorithm("table4", name, "Q4", &q4, &self.excel, algorithm)?);
        }
        rows.push(self.run_algorithm(
            "table4",
            "e-MQO",
            "Q4",
            &q4,
            &self.excel,
            Algorithm::EMqo,
        )?);
        Ok(rows)
    }

    /// Figures 12(a)–(c): top-k vs o-sharing for Q4, Q7 and Q10.
    pub fn fig12_topk(&self) -> CoreResult<Vec<ExperimentRow>> {
        let mut rows = Vec::new();
        for (figure, id) in [
            ("fig12a", QueryId::Q4),
            ("fig12b", QueryId::Q7),
            ("fig12c", QueryId::Q10),
        ] {
            let query = workload::query(id);
            let scenario = self.scenario(id.target());
            // The o-sharing baseline (compute every probability, then sort).
            let baseline = evaluate(
                &query,
                &scenario.mappings,
                &scenario.catalog,
                Algorithm::OSharing(Strategy::Sef),
            )?;
            for &k in &self.config.k_sweep {
                let mut row = ExperimentRow::new(figure, "o-sharing", k);
                row.time = baseline.metrics.total_time;
                row.source_operators = baseline.metrics.source_operators();
                row.answers = baseline.answer.len();
                rows.push(row);

                let topk = top_k(
                    &query,
                    &scenario.mappings,
                    &scenario.catalog,
                    k,
                    Strategy::Sef,
                )?;
                let mut row = ExperimentRow::new(figure, "top-k", k);
                row.time = topk.metrics.total_time;
                row.source_operators = topk.metrics.source_operators();
                row.answers = topk.entries.len();
                rows.push(row);
            }
        }
        Ok(rows)
    }

    /// The serving-layer experiment (not in the paper): replay a synthetic Excel workload of
    /// growing size three ways — sequentially with `e-basic`, sequentially with
    /// `o-sharing(SEF)`, and through `urm-service` as one batch with a batch-wide sub-plan
    /// cache and answer-cache dedup.  The batched service wins because cross-query sharing and
    /// duplicate elimination amortise work no per-query algorithm can.
    pub fn service_batching(&self) -> CoreResult<Vec<ExperimentRow>> {
        use std::time::Instant;
        use urm_datagen::replay::synthetic_workload;
        use urm_service::{QueryService, ServiceConfig};

        let scenario = &self.excel;
        let mut rows = Vec::new();
        for n in [10usize, 30, 50] {
            let workload = synthetic_workload(n, Some(TargetSchemaKind::Excel));

            for (series, algorithm) in [
                ("sequential e-basic", Algorithm::EBasic),
                (
                    "sequential o-sharing(SEF)",
                    Algorithm::OSharing(Strategy::Sef),
                ),
            ] {
                let mut row = ExperimentRow::new("service", series, n);
                let start = Instant::now();
                for entry in &workload {
                    let eval = evaluate(
                        &entry.query,
                        &scenario.mappings,
                        &scenario.catalog,
                        algorithm,
                    )?;
                    row.source_operators += eval.metrics.source_operators();
                    row.answers += eval.answer.len();
                }
                row.time = start.elapsed();
                rows.push(row);
            }

            let service = QueryService::new(ServiceConfig {
                workers: 1,
                batch_max: n.max(1),
                ..ServiceConfig::default()
            });
            let epoch = service.register_epoch(scenario.catalog.clone(), scenario.mappings.clone());
            let mut row = ExperimentRow::new("service", "batched service", n);
            let start = Instant::now();
            let responses = service
                .execute_all(epoch, workload.iter().map(|e| e.query.clone()).collect())
                .map_err(|e| urm_core::CoreError::InvalidQuery(e.to_string()))?;
            row.time = start.elapsed();
            let metrics = service.metrics();
            row.source_operators = metrics.source_operators;
            row.answers = responses.iter().map(|r| r.answer.len()).sum();
            rows.push(row);

            rows.push(ExperimentRow::counter(
                "service",
                "plan-hit-rate",
                n,
                "plan-hit-rate",
                metrics.plan_hit_rate(),
            ));
        }
        Ok(rows)
    }

    /// Runs every experiment, returning all rows.
    pub fn run_all(&self) -> CoreResult<Vec<ExperimentRow>> {
        let mut rows = Vec::new();
        rows.extend(self.fig9_oratio()?);
        rows.extend(self.fig10a_breakdown()?);
        rows.extend(self.fig10bc_simple_solutions()?);
        rows.extend(self.fig11a_queries()?);
        rows.extend(self.fig11bc_sharing()?);
        rows.extend(self.fig11de_query_size()?);
        rows.extend(self.fig11f_table4_strategies()?);
        rows.extend(self.fig12_topk()?);
        rows.extend(self.service_batching()?);
        Ok(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_harness() -> Harness {
        Harness::new(HarnessConfig::tiny()).unwrap()
    }

    #[test]
    fn fig9_reports_high_overlap() {
        let h = tiny_harness();
        let rows = h.fig9_oratio().unwrap();
        assert_eq!(rows.len(), 5);
        for row in rows {
            let (_, oratio) = row.extra.unwrap();
            assert!(oratio > 0.4, "o-ratio {oratio}");
        }
    }

    #[test]
    fn fig11a_runs_all_queries_and_algorithms() {
        let h = tiny_harness();
        let rows = h.fig11a_queries().unwrap();
        assert_eq!(rows.len(), 30);
        // All three algorithms produce the same number of answers per query.
        for chunk in rows.chunks(3) {
            assert_eq!(chunk[0].answers, chunk[1].answers, "query {}", chunk[0].x);
            assert_eq!(chunk[1].answers, chunk[2].answers, "query {}", chunk[0].x);
        }
    }

    #[test]
    fn table4_sef_uses_no_more_operators_than_random() {
        let h = tiny_harness();
        let rows = h.fig11f_table4_strategies().unwrap();
        let ops = |series: &str| {
            rows.iter()
                .find(|r| r.experiment == "table4" && r.series == series)
                .unwrap()
                .source_operators
        };
        assert!(ops("SEF") <= ops("Random"));
        assert!(ops("SNF") <= ops("Random"));
    }

    #[test]
    fn fig12_topk_answers_are_bounded_by_k() {
        let h = tiny_harness();
        let rows = h.fig12_topk().unwrap();
        for row in rows.iter().filter(|r| r.series == "top-k") {
            let k: usize = row.x.parse().unwrap();
            assert!(row.answers <= k);
        }
    }
}
