//! Adaptive-execution micro-benchmark: static estimates vs. observed-cardinality feedback on
//! a skew-heavy join batch.
//!
//! The batch is built to mis-lead static estimation the way the Zipf-skewed source data does:
//! every join puts a *selectively filtered* side on the left (a clerk's orders, the tail ranks
//! of the skewed `quantity` key) and a whole base relation on the right.  The canonical hash
//! join builds on the right — here always the big side — so the static schedule pays a full
//! hash-table build per join, per batch.  With the feedback loop on, the first batch records
//! observed cardinalities on the epoch's `CardinalityStore` and every later batch flips those
//! builds to the observed-small side ([`EpochRunReport::reordered_joins`]).
//!
//! Four measured modes — `static`/`adaptive` × `cold` (fresh epoch per iteration) and `warm`
//! (persistent epoch with a 1-byte pin budget, so repeats re-execute while the store persists;
//! the warm-static series is the control that re-executes *without* feedback):
//!
//! * **byte identity first**: before any timing, the run asserts that adaptive answers —
//!   cold and fed-back — are row-for-row identical to static ones, and that the warm adaptive
//!   batch actually consumed feedback (`observed_nodes > 0`, `reordered_joins ≥ 1`);
//! * the emitted rows (`BENCH_adaptive.json`) carry the timings plus the feedback counters
//!   and `hardware-threads`, which CI gates on (warm adaptive ≥ 1.2× warm static on
//!   multi-core runners).
//!
//! [`EpochRunReport::reordered_joins`]: urm_engine::EpochRunReport

use crate::experiments::{ExperimentRow, RowKind};
use std::sync::Arc;
use std::time::{Duration, Instant};
use urm_core::CoreResult;
use urm_datagen::source::generate_source;
use urm_engine::{CompareOp, EpochDag, EpochRunReport, Executor, Plan, Predicate};
use urm_storage::{Catalog, Relation, Value};

/// Configuration of one adaptive micro-benchmark run.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveBenchConfig {
    /// Source-instance scale factor (`Orders` gets `2 × scale` rows, `LineItem` `4 × scale`).
    pub scale: usize,
    /// Number of mis-estimated joins in the batch.
    pub queries: usize,
    /// Timed iterations per mode.
    pub iters: usize,
    /// Data-generation seed.
    pub seed: u64,
    /// DAG-scheduler workers per batch.
    pub workers: usize,
}

impl Default for AdaptiveBenchConfig {
    fn default() -> Self {
        AdaptiveBenchConfig {
            scale: 600,
            queries: 8,
            iters: 5,
            seed: 42,
            workers: 2,
        }
    }
}

/// The mis-estimated batch: joins whose *observed*-small side is the left (selective filters
/// over shared base scans — no aliases, so the scans dedupe to one DAG node each and warm
/// rounds re-execute only the selects and joins), while the canonical build side (the right)
/// is a whole base relation.
///
/// Two families, distinct predicate constants per query so every join is its own DAG node:
///
/// * one clerk's orders probing all of `LineItem` (canonical build: `4 × scale` rows);
/// * the Zipf tail of `LineItem.quantity` (ranks ≥ 44, a few percent of the rows) probing all
///   of `Orders` (canonical build: `2 × scale` rows).
#[must_use]
pub fn mis_estimated_batch(queries: usize) -> Vec<Plan> {
    (0..queries.max(1))
        .map(|i| {
            if i % 2 == 0 {
                Plan::scan("Orders")
                    .select(Predicate::compare(
                        "Orders.clerk",
                        CompareOp::Eq,
                        Value::from(format!("clerk{}", (i * 7) % 50)),
                    ))
                    .hash_join(
                        Plan::scan("LineItem"),
                        vec![("Orders.orderNum".into(), "LineItem.itemOrderNum".into())],
                    )
            } else {
                Plan::scan("LineItem")
                    .select(Predicate::compare(
                        "LineItem.quantity",
                        CompareOp::Ge,
                        Value::from(44 + (i as i64 % 6)),
                    ))
                    .hash_join(
                        Plan::scan("Orders"),
                        vec![("LineItem.itemOrderNum".into(), "Orders.orderNum".into())],
                    )
            }
        })
        .collect()
}

fn run_batch(
    epoch: &mut EpochDag,
    catalog: &Catalog,
    batch: &[Plan],
    workers: usize,
) -> (Vec<Arc<Relation>>, EpochRunReport) {
    let mut exec = Executor::new(catalog);
    for plan in batch {
        epoch.submit(plan, &exec).expect("plan submits");
    }
    let run = epoch
        .execute_pending(&mut exec, workers)
        .expect("batch runs");
    (run.root_results, run.report)
}

fn timing_row(series: &str, total: Duration, answers: usize) -> ExperimentRow {
    ExperimentRow {
        experiment: "adaptive".into(),
        series: series.into(),
        x: "mis-estimated".into(),
        kind: RowKind::Timing,
        time: total,
        source_operators: 0,
        answers,
        extra: None,
    }
}

fn counter_row(series: &str, name: &str, value: f64) -> ExperimentRow {
    ExperimentRow::counter("adaptive", series, "mis-estimated", name, value)
}

/// Runs the micro-benchmark, returning `BENCH_adaptive.json`-ready rows.
///
/// # Panics
/// Panics (failing the CI step) when adaptive answers — cold or fed-back — diverge from
/// static ones by a single row, or when the warm adaptive batch did not consume feedback
/// (no observed nodes, no flipped build side).
pub fn run(config: &AdaptiveBenchConfig) -> CoreResult<Vec<ExperimentRow>> {
    let catalog = generate_source(config.scale, config.seed);
    let batch = mis_estimated_batch(config.queries);
    let iters = config.iters.max(1);
    let workers = config.workers.max(1);

    // Correctness first: two rounds on each epoch flavour (a 1-byte pin budget makes round 2
    // re-execute), every round byte-compared against the static answers.
    let mut identity_rounds = 0u64;
    {
        let mut adaptive_epoch = EpochDag::with_pin_budget(1);
        let mut static_epoch = EpochDag::with_pin_budget(1);
        static_epoch.set_adaptive(false);
        let mut warm_report = None;
        for round in 0..2 {
            let (a_rows, a_report) = run_batch(&mut adaptive_epoch, &catalog, &batch, workers);
            let (s_rows, s_report) = run_batch(&mut static_epoch, &catalog, &batch, workers);
            assert_eq!(s_report.observed_nodes, 0, "static run consumed feedback");
            assert_eq!(s_report.reordered_joins, 0, "static run flipped a join");
            for (plan, (a, s)) in batch.iter().zip(a_rows.iter().zip(&s_rows)) {
                assert_eq!(
                    a.rows(),
                    s.rows(),
                    "adaptive round {round} diverged from static:\n{plan}"
                );
            }
            identity_rounds += 1;
            warm_report = Some(a_report);
        }
        let warm = warm_report.expect("two rounds ran");
        assert!(
            warm.observed_nodes > 0,
            "warm adaptive batch ignored the cardinality store"
        );
        assert!(
            warm.reordered_joins >= 1,
            "no mis-estimated build side was flipped on the warm batch"
        );
    }

    // Timed: cold batches, a fresh epoch per iteration (the store never warms up, so this
    // pair doubles as a feedback-overhead check — the loop records but cannot yet steer).
    let mut answers = 0usize;
    let mut time_cold = |adaptive: bool| -> Duration {
        let start = Instant::now();
        for _ in 0..iters {
            let mut epoch = EpochDag::with_pin_budget(1);
            epoch.set_adaptive(adaptive);
            let (rows, _) = run_batch(&mut epoch, &catalog, &batch, workers);
            answers = rows.iter().map(|r| r.len()).sum();
        }
        start.elapsed()
    };
    let static_cold = time_cold(false);
    let adaptive_cold = time_cold(true);

    // Timed: warm repeats on persistent epochs.  Both flavours re-execute every round (the
    // 1-byte pin budget keeps no results); only the adaptive epoch gets to steer.
    let (mut observed_nodes, mut reordered_joins) = (0u64, 0u64);
    let time_warm = |adaptive: bool, observed: &mut u64, reordered: &mut u64| -> Duration {
        let mut epoch = EpochDag::with_pin_budget(1);
        epoch.set_adaptive(adaptive);
        run_batch(&mut epoch, &catalog, &batch, workers); // untimed cold round seeds the store
        let start = Instant::now();
        for _ in 0..iters {
            let (_, report) = run_batch(&mut epoch, &catalog, &batch, workers);
            *observed += report.observed_nodes;
            *reordered += report.reordered_joins;
        }
        start.elapsed()
    };
    let (mut sink_o, mut sink_r) = (0u64, 0u64);
    let static_warm = time_warm(false, &mut sink_o, &mut sink_r);
    let adaptive_warm = time_warm(true, &mut observed_nodes, &mut reordered_joins);
    let speedup_warm = static_warm.as_secs_f64() / adaptive_warm.as_secs_f64().max(f64::EPSILON);

    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    Ok(vec![
        timing_row("static-cold", static_cold, answers),
        timing_row("adaptive-cold", adaptive_cold, answers),
        timing_row("static-warm", static_warm, answers),
        timing_row("adaptive-warm", adaptive_warm, answers),
        counter_row("identity", "rounds-verified", identity_rounds as f64),
        counter_row("feedback", "observed-nodes", observed_nodes as f64),
        counter_row("feedback", "reordered-joins", reordered_joins as f64),
        counter_row("feedback", "speedup-warm", speedup_warm),
        counter_row("env", "hardware-threads", threads as f64),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_bench_gates_hold_at_toy_scale() {
        let rows = run(&AdaptiveBenchConfig {
            scale: 60,
            queries: 4,
            iters: 2,
            seed: 7,
            workers: 1,
        })
        .unwrap();
        assert_eq!(rows.len(), 9);
        let extra = |series: &str, name: &str| -> f64 {
            let row = rows
                .iter()
                .find(|r| r.series == series && r.extra.as_ref().is_some_and(|(n, _)| n == name))
                .unwrap_or_else(|| panic!("missing {series}/{name}"));
            assert_eq!(row.kind, RowKind::Counter, "{series}/{name}");
            row.extra.as_ref().unwrap().1
        };
        // run() itself asserts byte identity and that the warm batch consumed feedback; here
        // we check the emitted counters carry that evidence (timing ratios are host-dependent
        // and gated in CI instead).
        assert_eq!(extra("identity", "rounds-verified"), 2.0);
        assert!(extra("feedback", "observed-nodes") > 0.0);
        assert!(extra("feedback", "reordered-joins") >= 1.0);
        assert!(extra("feedback", "speedup-warm") > 0.0);
        assert!(extra("env", "hardware-threads") >= 1.0);
        let timing = |series: &str| {
            rows.iter()
                .find(|r| r.series == series && r.kind == RowKind::Timing)
                .unwrap_or_else(|| panic!("missing {series} timing"))
        };
        let baseline = timing("static-cold").answers;
        assert!(baseline > 0, "the batch must produce answers");
        for series in ["adaptive-cold", "static-warm", "adaptive-warm"] {
            assert_eq!(
                timing(series).answers,
                baseline,
                "{series} answers diverged"
            );
        }
    }
}
