//! Per-epoch DAG micro-benchmark: cold batch vs. warm repeat batch vs. the PR 3
//! rebuild-every-batch baseline.
//!
//! The join-heavy batch of [`dag_bench`](crate::dag_bench) is executed three ways over a
//! generated source instance:
//!
//! * **rebuild-every-batch** — the PR 3 shape: every iteration optimises and binds every plan,
//!   merges a fresh [`OperatorDag`] and executes all of it (what the service did per batch
//!   before the epoch DAG existed);
//! * **epoch-cold** — a fresh [`EpochDag`] per iteration: one bind-cache miss and one
//!   execution per distinct node, same total work as the rebuild path plus the (tiny) cache
//!   bookkeeping;
//! * **epoch-warm** — one persistent `EpochDag`, the same batch repeated: every submission is
//!   a bind-cache hit and every root is answered from the pinned results of the previous
//!   repeat — no binding, no DAG merging, no operator execution at all.
//!
//! All three produce identical answer sizes (asserted).  The rows carry per-mode times, the
//! warm-over-cold and warm-over-rebuild speedups and the epoch reuse counters, and are written
//! to `BENCH_epoch.json` by the `epoch_bench` binary so the cross-batch reuse trajectory is
//! tracked from PR to PR.  The warm/cold ratio is scheduling-free bookkeeping, so it is
//! meaningful on any host (unlike `BENCH_dag.json`'s parallel speedup, which needs ≥ 2
//! hardware threads).

use crate::dag_bench::joinheavy_batch;
use crate::experiments::{ExperimentRow, RowKind};
use std::sync::Arc;
use std::time::{Duration, Instant};
use urm_core::CoreResult;
use urm_datagen::source::generate_source;
use urm_engine::optimize::optimize;
use urm_engine::{DagScheduler, EpochDag, Executor, OperatorDag, Plan};
use urm_storage::{Catalog, Relation};

/// Configuration of one epoch micro-benchmark run.
#[derive(Debug, Clone, Copy)]
pub struct EpochBenchConfig {
    /// Source-instance scale factor (`Orders` gets `2 × scale` rows, `LineItem` `4 × scale`).
    pub scale: usize,
    /// Number of join-heavy queries in the batch.
    pub queries: usize,
    /// Timed iterations (batches) per mode.
    pub iters: usize,
    /// Data-generation seed.
    pub seed: u64,
    /// DAG-scheduler workers per batch (1 = sequential; the warm path never schedules work, so
    /// the headline warm/cold ratio is worker-independent).
    pub workers: usize,
}

impl Default for EpochBenchConfig {
    fn default() -> Self {
        EpochBenchConfig {
            scale: 900,
            queries: 12,
            iters: 20,
            seed: 42,
            workers: 1,
        }
    }
}

struct Measurement {
    total: Duration,
    answers: Vec<usize>,
}

impl Measurement {
    fn row(&self, series: &str) -> ExperimentRow {
        ExperimentRow {
            experiment: "epoch".into(),
            series: series.into(),
            x: "joinheavy".into(),
            kind: RowKind::Timing,
            time: self.total,
            source_operators: 0,
            answers: self.answers.iter().sum(),
            extra: None,
        }
    }
}

fn answer_sizes(results: &[Arc<Relation>]) -> Vec<usize> {
    results.iter().map(|r| r.len()).collect()
}

/// The PR 3 baseline: every batch re-optimises, rebinds, rebuilds the DAG and executes it.
fn measure_rebuild(catalog: &Catalog, batch: &[Plan], iters: usize, workers: usize) -> Measurement {
    let mut exec = Executor::new(catalog);
    let scheduler = DagScheduler::with_workers(workers);
    let mut answers = Vec::new();
    let start = Instant::now();
    for _ in 0..iters {
        let mut dag = OperatorDag::new();
        for plan in batch {
            let optimized = optimize(plan, catalog).expect("plan optimises");
            let physical = exec.bind(&optimized).expect("plan binds");
            dag.add_root(&physical);
        }
        let run = scheduler.execute(&dag, &mut exec).expect("batch runs");
        answers = answer_sizes(&run.root_results);
    }
    Measurement {
        total: start.elapsed(),
        answers,
    }
}

/// Cold epoch batches: a fresh [`EpochDag`] per iteration (same work as the rebuild path, run
/// through the epoch machinery).
fn measure_cold(catalog: &Catalog, batch: &[Plan], iters: usize, workers: usize) -> Measurement {
    let mut exec = Executor::new(catalog);
    let mut answers = Vec::new();
    let start = Instant::now();
    for _ in 0..iters {
        let mut epoch = EpochDag::new();
        for plan in batch {
            epoch.submit(plan, &exec).expect("plan submits");
        }
        let run = epoch
            .execute_pending(&mut exec, workers)
            .expect("batch runs");
        answers = answer_sizes(&run.root_results);
    }
    Measurement {
        total: start.elapsed(),
        answers,
    }
}

/// Warm epoch batches: the same batch repeated on one persistent [`EpochDag`] (the first,
/// cold, batch runs untimed).  Returns the measurement plus the last repeat's reuse counters.
fn measure_warm(
    catalog: &Catalog,
    batch: &[Plan],
    iters: usize,
    workers: usize,
) -> (Measurement, u64, u64) {
    let mut exec = Executor::new(catalog);
    let mut epoch = EpochDag::new();
    for plan in batch {
        epoch.submit(plan, &exec).expect("plan submits");
    }
    epoch
        .execute_pending(&mut exec, workers)
        .expect("cold batch runs");

    let mut answers = Vec::new();
    let (mut bind_hits, mut results_reused) = (0u64, 0u64);
    let start = Instant::now();
    for _ in 0..iters {
        for plan in batch {
            epoch.submit(plan, &exec).expect("plan submits");
        }
        let run = epoch
            .execute_pending(&mut exec, workers)
            .expect("batch runs");
        answers = answer_sizes(&run.root_results);
        bind_hits = run.report.bind_hits;
        results_reused = run.report.results_reused;
    }
    let measurement = Measurement {
        total: start.elapsed(),
        answers,
    };
    (measurement, bind_hits, results_reused)
}

fn extra_row(series: &str, name: &str, value: f64) -> ExperimentRow {
    ExperimentRow {
        experiment: "epoch".into(),
        series: series.into(),
        x: "joinheavy".into(),
        kind: RowKind::Timing,
        time: Duration::ZERO,
        source_operators: 0,
        answers: 0,
        extra: Some((name.into(), value)),
    }
}

/// Runs the micro-benchmark, returning `BENCH_epoch.json`-ready rows.
pub fn run(config: &EpochBenchConfig) -> CoreResult<Vec<ExperimentRow>> {
    let catalog = generate_source(config.scale, config.seed);
    let batch = joinheavy_batch(config.queries.max(1));
    let iters = config.iters.max(1);
    let workers = config.workers.max(1);

    // Warm-up + correctness: all three modes must agree tuple-count-for-tuple-count.
    {
        let rebuild = measure_rebuild(&catalog, &batch, 1, workers);
        let cold = measure_cold(&catalog, &batch, 1, workers);
        let (warm, _, _) = measure_warm(&catalog, &batch, 1, workers);
        assert_eq!(rebuild.answers, cold.answers, "epoch-cold diverged");
        assert_eq!(rebuild.answers, warm.answers, "epoch-warm diverged");
    }

    let rebuild = measure_rebuild(&catalog, &batch, iters, workers);
    let cold = measure_cold(&catalog, &batch, iters, workers);
    let (warm, bind_hits, results_reused) = measure_warm(&catalog, &batch, iters, workers);

    let speedup = |base: &Measurement, new: &Measurement| {
        if new.total.as_secs_f64() == 0.0 {
            f64::INFINITY
        } else {
            base.total.as_secs_f64() / new.total.as_secs_f64()
        }
    };

    Ok(vec![
        rebuild.row("rebuild-every-batch"),
        cold.row("epoch-cold"),
        warm.row("epoch-warm"),
        extra_row("speedup-warm-vs-cold", "speedup", speedup(&cold, &warm)),
        extra_row(
            "speedup-warm-vs-rebuild",
            "speedup",
            speedup(&rebuild, &warm),
        ),
        extra_row("epoch-reuse", "bind-hits-per-batch", bind_hits as f64),
        extra_row(
            "epoch-reuse",
            "results-reused-per-batch",
            results_reused as f64,
        ),
        extra_row(
            "host-parallelism",
            "hardware-threads",
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1) as f64,
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_bench_produces_consistent_rows() {
        let rows = run(&EpochBenchConfig {
            scale: 12,
            queries: 6,
            iters: 2,
            seed: 7,
            workers: 1,
        })
        .unwrap();
        assert_eq!(rows.len(), 8);
        let of = |series: &str, name: Option<&str>| {
            rows.iter()
                .find(|r| {
                    r.series == series
                        && name.is_none_or(|n| r.extra.as_ref().is_some_and(|(en, _)| en == n))
                })
                .unwrap_or_else(|| panic!("missing {series}"))
        };
        // run() itself asserts answer equality across modes; check the report shape.
        assert!(of("rebuild-every-batch", None).time > Duration::ZERO);
        assert!(of("epoch-cold", None).time > Duration::ZERO);
        assert!(of("epoch-warm", None).time > Duration::ZERO);
        // A warm repeat answers every submission from the bind cache and every node from the
        // pinned results.
        let bind_hits = of("epoch-reuse", Some("bind-hits-per-batch"))
            .extra
            .as_ref()
            .unwrap()
            .1;
        assert_eq!(bind_hits, 6.0);
        let reused = of("epoch-reuse", Some("results-reused-per-batch"))
            .extra
            .as_ref()
            .unwrap()
            .1;
        assert!(reused >= 6.0, "every root must be answered from cache");
        // Warm beats cold even at toy scale (no binding, no execution at all).
        let warm_speedup = of("speedup-warm-vs-cold", None).extra.as_ref().unwrap().1;
        assert!(
            warm_speedup > 1.0,
            "warm repeat slower than cold batch ({warm_speedup}×)"
        );
    }
}
