//! Spill micro-benchmark: in-memory vs. byte-budget-constrained execution of an oversized
//! join-heavy batch.
//!
//! The batch joins the whole `LineItem` relation repeatedly (the join-heavy family of
//! [`dag_bench`](crate::dag_bench) plus unfiltered `Orders ⋈ LineItem` fan-outs), so the bytes
//! it materialises are a multiple of the source instance — while the configured budget is a
//! *fraction* of it (`database_bytes / budget_divisor`, default 4, i.e. the workload is ≥ 4×
//! the budget).  Three measured modes:
//!
//! * **in-memory** — a fresh unbudgeted [`EpochDag`] per iteration: the pre-spill behaviour;
//! * **budget-constrained** — a fresh [`EpochDag::with_memory_budget`] per iteration: hash
//!   joins over the full `LineItem` build side take the grace (partitioned) path through the
//!   spill pool, and pinned results page out to segments;
//! * **budget-warm** — repeat batches on one persistent budgeted epoch: warm answers stream
//!   back in from spilled pins (segment reads instead of node executions).
//!
//! The run *asserts* that constrained answers are row-for-row identical to in-memory ones and
//! that the pool's resident bytes never exceeded the budget; the emitted rows
//! (`BENCH_spill.json`) carry the spill counters CI gates on (`bytes_spilled > 0`, the grace
//! path taken, budget compliance within one page).

use crate::dag_bench::joinheavy_batch;
use crate::experiments::{ExperimentRow, RowKind};
use std::sync::Arc;
use std::time::{Duration, Instant};
use urm_core::CoreResult;
use urm_datagen::source::generate_source;
use urm_engine::{EpochDag, Executor, Plan};
use urm_storage::{Catalog, Relation};

/// Configuration of one spill micro-benchmark run.
#[derive(Debug, Clone, Copy)]
pub struct SpillBenchConfig {
    /// Source-instance scale factor (`Orders` gets `2 × scale` rows, `LineItem` `4 × scale`).
    pub scale: usize,
    /// Number of join-heavy queries in the batch (plus `queries / 2` unfiltered joins).
    pub queries: usize,
    /// Timed iterations per mode.
    pub iters: usize,
    /// Data-generation seed.
    pub seed: u64,
    /// The memory budget is `database_bytes / budget_divisor` (≥ 2; default 4, so the
    /// source instance alone is 4× the budget).
    pub budget_divisor: usize,
    /// DAG-scheduler workers per batch.
    pub workers: usize,
}

impl Default for SpillBenchConfig {
    fn default() -> Self {
        SpillBenchConfig {
            scale: 600,
            queries: 10,
            iters: 3,
            seed: 42,
            budget_divisor: 4,
            workers: 1,
        }
    }
}

/// The oversized batch: the shared join-heavy plans plus unfiltered `Orders ⋈ LineItem`
/// fan-outs whose build side is the *whole* `LineItem` relation — guaranteed bigger than any
/// fractional budget, so the grace path must engage.
#[must_use]
pub fn oversized_batch(queries: usize) -> Vec<Plan> {
    let mut plans = joinheavy_batch(queries);
    for i in 0..(queries / 2).max(1) {
        let alias = format!("LI{i}");
        plans.push(Plan::scan("Orders").hash_join(
            Plan::scan_as("LineItem", alias.clone()),
            vec![("Orders.orderNum".into(), format!("{alias}.itemOrderNum"))],
        ));
    }
    plans
}

struct Measurement {
    total: Duration,
    answers: Vec<usize>,
    rows: Vec<Vec<urm_storage::Tuple>>,
}

impl Measurement {
    fn row(&self, series: &str) -> ExperimentRow {
        ExperimentRow {
            experiment: "spill".into(),
            series: series.into(),
            x: "oversized".into(),
            kind: RowKind::Timing,
            time: self.total,
            source_operators: 0,
            answers: self.answers.iter().sum(),
            extra: None,
        }
    }
}

fn capture(results: &[Arc<Relation>]) -> Measurement {
    Measurement {
        total: Duration::ZERO,
        answers: results.iter().map(|r| r.len()).collect(),
        rows: results.iter().map(|r| r.rows().to_vec()).collect(),
    }
}

fn run_batch(
    epoch: &mut EpochDag,
    catalog: &Catalog,
    batch: &[Plan],
    workers: usize,
) -> Vec<Arc<Relation>> {
    let mut exec = match epoch.pool() {
        Some(pool) => Executor::with_pool(catalog, pool.clone()),
        None => Executor::new(catalog),
    };
    for plan in batch {
        epoch.submit(plan, &exec).expect("plan submits");
    }
    epoch
        .execute_pending(&mut exec, workers)
        .expect("batch runs")
        .root_results
}

fn counter_row(series: &str, name: &str, value: f64) -> ExperimentRow {
    ExperimentRow::counter("spill", series, "oversized", name, value)
}

/// Runs the micro-benchmark, returning `BENCH_spill.json`-ready rows.
///
/// # Panics
/// Panics (failing the CI step) when budget-constrained answers diverge from in-memory ones,
/// or when the pool's resident bytes ever exceeded the budget.
pub fn run(config: &SpillBenchConfig) -> CoreResult<Vec<ExperimentRow>> {
    let catalog = generate_source(config.scale, config.seed);
    let batch = oversized_batch(config.queries.max(1));
    let iters = config.iters.max(1);
    let workers = config.workers.max(1);
    let database_bytes = catalog.estimated_bytes();
    let budget = database_bytes / config.budget_divisor.max(2);

    // Correctness first: budget-constrained execution must be byte-identical to in-memory.
    let baseline = {
        let mut epoch = EpochDag::new();
        capture(&run_batch(&mut epoch, &catalog, &batch, workers))
    };
    {
        let mut epoch = EpochDag::with_memory_budget(budget);
        let constrained = capture(&run_batch(&mut epoch, &catalog, &batch, workers));
        assert_eq!(
            baseline.answers, constrained.answers,
            "budget-constrained run changed answer sizes"
        );
        for (want, got) in baseline.rows.iter().zip(&constrained.rows) {
            assert_eq!(want, got, "budget-constrained run changed answer rows");
        }
    }

    // Timed: in-memory vs. budget-constrained cold batches.
    let mut in_memory = Measurement {
        total: Duration::ZERO,
        answers: Vec::new(),
        rows: Vec::new(),
    };
    let start = Instant::now();
    for _ in 0..iters {
        let mut epoch = EpochDag::new();
        in_memory.answers = run_batch(&mut epoch, &catalog, &batch, workers)
            .iter()
            .map(|r| r.len())
            .collect();
    }
    in_memory.total = start.elapsed();

    let mut constrained = Measurement {
        total: Duration::ZERO,
        answers: Vec::new(),
        rows: Vec::new(),
    };
    let (mut bytes_spilled, mut spill_reloads, mut grace_partitions) = (0u64, 0u64, 0u64);
    let (mut seg_raw, mut seg_encoded) = (0u64, 0u64);
    let mut peak_cached = 0usize;
    let start = Instant::now();
    for _ in 0..iters {
        let mut epoch = EpochDag::with_memory_budget(budget);
        let pool = epoch.pool().unwrap().clone();
        let mut exec = Executor::with_pool(&catalog, pool.clone());
        for plan in &batch {
            epoch.submit(plan, &exec).expect("plan submits");
        }
        let run = epoch
            .execute_pending(&mut exec, workers)
            .expect("batch runs");
        constrained.answers = run.root_results.iter().map(|r| r.len()).collect();
        drop(run);
        let stats = pool.stats();
        bytes_spilled += stats.bytes_spilled;
        spill_reloads += stats.spill_reloads;
        grace_partitions += exec.stats().grace_partitions;
        seg_raw += stats.segment_bytes_raw;
        seg_encoded += stats.segment_bytes_encoded;
        peak_cached = peak_cached.max(stats.peak_cached_bytes);
    }
    constrained.total = start.elapsed();
    assert!(
        peak_cached <= budget,
        "pool kept {peak_cached} bytes resident over the {budget}-byte budget"
    );

    // Timed: warm repeats on one persistent budgeted epoch (spilled-pin reloads).
    let mut warm = Measurement {
        total: Duration::ZERO,
        answers: Vec::new(),
        rows: Vec::new(),
    };
    let mut epoch = EpochDag::with_memory_budget(budget);
    let pool = epoch.pool().unwrap().clone();
    run_batch(&mut epoch, &catalog, &batch, workers); // untimed cold batch
    let reloads_before_warm = pool.stats().spill_reloads;
    let start = Instant::now();
    for _ in 0..iters {
        warm.answers = run_batch(&mut epoch, &catalog, &batch, workers)
            .iter()
            .map(|r| r.len())
            .collect();
    }
    warm.total = start.elapsed();
    let warm_reloads = pool.stats().spill_reloads - reloads_before_warm;
    assert_eq!(
        warm.answers, in_memory.answers,
        "warm budgeted repeats diverged"
    );

    Ok(vec![
        in_memory.row("in-memory"),
        constrained.row("budget-constrained"),
        warm.row("budget-warm"),
        counter_row("sizing", "database-bytes", database_bytes as f64),
        counter_row("sizing", "budget-bytes", budget as f64),
        counter_row("spill-counters", "bytes-spilled", bytes_spilled as f64),
        counter_row("spill-counters", "spill-reloads", spill_reloads as f64),
        counter_row(
            "spill-counters",
            "grace-partitions",
            grace_partitions as f64,
        ),
        counter_row("spill-counters", "warm-reloads", warm_reloads as f64),
        counter_row("spill-counters", "segment-bytes-raw", seg_raw as f64),
        counter_row(
            "spill-counters",
            "segment-bytes-encoded",
            seg_encoded as f64,
        ),
        counter_row(
            "budget-compliance",
            "peak-cached-minus-budget",
            peak_cached as f64 - budget as f64,
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spill_bench_gates_hold_at_toy_scale() {
        let rows = run(&SpillBenchConfig {
            scale: 40,
            queries: 4,
            iters: 2,
            seed: 7,
            budget_divisor: 4,
            workers: 1,
        })
        .unwrap();
        assert_eq!(rows.len(), 12);
        let extra = |series: &str, name: &str| -> f64 {
            let row = rows
                .iter()
                .find(|r| r.series == series && r.extra.as_ref().is_some_and(|(n, _)| n == name))
                .unwrap_or_else(|| panic!("missing {series}/{name}"));
            assert_eq!(row.kind, RowKind::Counter, "{series}/{name}");
            row.extra.as_ref().unwrap().1
        };
        // The acceptance gates, at toy scale: data ≥ 4× budget, real spilling, the grace
        // path taken, and the pool never over budget (run() itself asserts row equality).
        assert!(extra("sizing", "database-bytes") >= 4.0 * extra("sizing", "budget-bytes"));
        assert!(extra("spill-counters", "bytes-spilled") > 0.0);
        assert!(extra("spill-counters", "grace-partitions") >= 2.0);
        assert!(extra("spill-counters", "spill-reloads") > 0.0);
        assert!(extra("budget-compliance", "peak-cached-minus-budget") <= 0.0);
        // Warm repeats answer from spilled pins without re-executing.
        assert!(extra("spill-counters", "warm-reloads") > 0.0);
        // The columnar segment codec actually compresses what it spills.
        let raw = extra("spill-counters", "segment-bytes-raw");
        let encoded = extra("spill-counters", "segment-bytes-encoded");
        assert!(raw > 0.0 && encoded > 0.0);
        assert!(encoded < raw, "encoded {encoded} should beat raw {raw}");
    }
}
