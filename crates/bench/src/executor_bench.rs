//! Executor micro-benchmark: the bound physical path vs. the retained row-at-a-time reference.
//!
//! Three workloads over a generated source instance (the same generator the paper experiments
//! use) — a selection pipeline, a wide projection, and a join-heavy plan — are executed by
//! both engines for a fixed number of iterations.  The report carries rows/sec per engine, the
//! physical path's clone-elimination counter, and the speedup factor, and is written to
//! `BENCH_executor.json` by the `executor_bench` binary so the perf trajectory of the executor
//! is tracked from PR to PR.

use crate::experiments::{ExperimentRow, RowKind};
use std::time::{Duration, Instant};
use urm_core::CoreResult;
use urm_datagen::source::generate_source;
use urm_engine::{CompareOp, Executor, Plan, Predicate, ReferenceExecutor};
use urm_storage::{Catalog, Value};

/// Configuration of one micro-benchmark run.
#[derive(Debug, Clone, Copy)]
pub struct ExecutorBenchConfig {
    /// Source-instance scale factor (`Orders` gets `2 × scale` rows, `LineItem` `4 × scale`).
    pub scale: usize,
    /// Timed iterations per (workload, engine) pair.
    pub iters: usize,
    /// Data-generation seed.
    pub seed: u64,
}

impl Default for ExecutorBenchConfig {
    fn default() -> Self {
        ExecutorBenchConfig {
            scale: 300,
            iters: 200,
            seed: 42,
        }
    }
}

/// The named plans of the micro-benchmark, in report order.
fn workloads() -> Vec<(&'static str, Plan)> {
    // Selection pipeline: two predicates over the wide Orders relation.
    let select = Plan::scan("Orders")
        .select(Predicate::eq("Orders.orderStatus", Value::from("OPEN")))
        .select(Predicate::compare(
            "Orders.orderPriority",
            CompareOp::Le,
            Value::from(3i64),
        ))
        .project(vec!["Orders.clerk".into(), "Orders.totalPrice".into()]);

    // Projection: narrow a wide relation (name resolution cost without selectivity).
    let project = Plan::scan("Customer").project(vec![
        "Customer.custName".into(),
        "Customer.telephone".into(),
        "Customer.custNation".into(),
    ]);

    // Join-heavy: a selective probe side against a large build side, a residual selection and
    // a projection — the shape reformulated product queries (Q3/Q4) execute as.  The build
    // side is where the pre-refactor executor paid per row (a key-value clone plus a composite
    // key allocation per build tuple); the bound path hashes borrowed keys.
    let join_heavy = Plan::scan("Orders")
        .select(Predicate::eq("Orders.clerk", Value::from("clerk7")))
        .hash_join(
            Plan::scan("LineItem"),
            vec![("Orders.orderNum".into(), "LineItem.itemOrderNum".into())],
        )
        .select(Predicate::compare(
            "LineItem.quantity",
            CompareOp::Gt,
            Value::from(10i64),
        ))
        .project(vec!["Orders.clerk".into(), "LineItem.extendedPrice".into()]);

    vec![
        ("select", select),
        ("project", project),
        ("join-heavy", join_heavy),
    ]
}

/// Outcome of one (workload, engine) measurement.
struct Measurement {
    total: Duration,
    rows_processed: u64,
    source_operators: u64,
    answers: usize,
    rows_shared: u64,
}

impl Measurement {
    fn rows_per_second(&self) -> f64 {
        let secs = self.total.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.rows_processed as f64 / secs
        }
    }

    fn row(&self, series: &str, x: &str) -> ExperimentRow {
        ExperimentRow {
            experiment: "executor".into(),
            series: series.into(),
            x: x.into(),
            kind: RowKind::Timing,
            time: self.total,
            source_operators: self.source_operators,
            answers: self.answers,
            extra: Some(("rows-per-sec".into(), self.rows_per_second())),
        }
    }
}

fn measure_reference(catalog: &Catalog, plan: &Plan, iters: usize) -> Measurement {
    let mut exec = ReferenceExecutor::new(catalog);
    exec.run(plan).expect("benchmark plan must execute"); // warm-up
    let mut exec = ReferenceExecutor::new(catalog);
    let start = Instant::now();
    let mut answers = 0;
    for _ in 0..iters {
        answers = exec.run(plan).expect("benchmark plan must execute").len();
    }
    let total = start.elapsed();
    let stats = exec.stats();
    Measurement {
        total,
        rows_processed: stats.tuples_read + stats.tuples_output,
        source_operators: stats.operators_executed,
        answers,
        rows_shared: stats.rows_shared,
    }
}

fn measure_physical(catalog: &Catalog, plan: &Plan, iters: usize) -> Measurement {
    let mut exec = Executor::new(catalog);
    exec.run(plan).expect("benchmark plan must execute"); // warm-up
    let mut exec = Executor::new(catalog);
    // The production paths bind once and execute many times (cached sub-plans, repeated
    // reformulations); the benchmark measures the same bind-once shape.
    let physical = exec.bind(plan).expect("benchmark plan must bind");
    let start = Instant::now();
    let mut answers = 0;
    for _ in 0..iters {
        answers = exec
            .execute(&physical)
            .expect("benchmark plan must execute")
            .len();
    }
    let total = start.elapsed();
    let stats = exec.stats();
    Measurement {
        total,
        rows_processed: stats.tuples_read + stats.tuples_output,
        source_operators: stats.operators_executed,
        answers,
        rows_shared: stats.rows_shared,
    }
}

/// Runs the micro-benchmark, returning `BENCH_executor.json`-ready rows.
///
/// Per workload: one row per engine (with rows/sec), one `speedup` row (physical over
/// reference) and one `rows-shared` row (the physical path's clone-elimination counter).
pub fn run(config: &ExecutorBenchConfig) -> CoreResult<Vec<ExperimentRow>> {
    let catalog = generate_source(config.scale, config.seed);
    let iters = config.iters.max(1);
    let mut rows = Vec::new();
    for (name, plan) in workloads() {
        let reference = measure_reference(&catalog, &plan, iters);
        let physical = measure_physical(&catalog, &plan, iters);
        assert_eq!(
            reference.answers, physical.answers,
            "engines disagree on workload '{name}'"
        );

        rows.push(reference.row("reference", name));
        rows.push(physical.row("physical", name));

        let speedup = if physical.total.as_secs_f64() == 0.0 {
            f64::INFINITY
        } else {
            reference.total.as_secs_f64() / physical.total.as_secs_f64()
        };
        rows.push(ExperimentRow {
            experiment: "executor".into(),
            series: "speedup".into(),
            x: name.into(),
            kind: RowKind::Timing,
            time: Duration::ZERO,
            source_operators: 0,
            answers: 0,
            extra: Some(("speedup".into(), speedup)),
        });
        rows.push(ExperimentRow {
            experiment: "executor".into(),
            series: "rows-shared".into(),
            x: name.into(),
            kind: RowKind::Timing,
            time: Duration::ZERO,
            source_operators: 0,
            answers: 0,
            extra: Some(("rows-shared".into(), physical.rows_shared as f64)),
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn microbench_produces_rows_for_every_workload_and_engines_agree() {
        let rows = run(&ExecutorBenchConfig {
            scale: 10,
            iters: 2,
            seed: 7,
        })
        .unwrap();
        // 3 workloads × (reference, physical, speedup, rows-shared).
        assert_eq!(rows.len(), 12);
        for x in ["select", "project", "join-heavy"] {
            let of = |series: &str| {
                rows.iter()
                    .find(|r| r.series == series && r.x == x)
                    .unwrap_or_else(|| panic!("missing {series}/{x}"))
            };
            // run() itself asserts answer equality; here we check the report shape.
            assert!(of("reference").time > Duration::ZERO);
            assert!(of("physical").time > Duration::ZERO);
            assert!(of("speedup").extra.as_ref().unwrap().1 > 0.0);
            assert!(of("rows-shared").extra.as_ref().unwrap().1 > 0.0);
        }
    }
}
