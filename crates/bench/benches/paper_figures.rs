//! Criterion benchmarks, one group per table/figure of the paper's evaluation.
//!
//! The groups deliberately use a small scenario so `cargo bench` completes in minutes; the
//! `paper_experiments` binary runs the same experiments at larger scales and prints the full
//! series.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use urm_bench::experiments::{Harness, HarnessConfig};
use urm_core::{evaluate, top_k, Algorithm, Strategy};
use urm_datagen::workload::{self, QueryId};

fn harness() -> Harness {
    Harness::new(HarnessConfig::tiny()).expect("harness")
}

/// Figure 9(a): o-ratio computation over growing mapping sets.
fn fig09_oratio(c: &mut Criterion) {
    let h = harness();
    c.bench_function("fig09/o-ratio", |b| {
        b.iter(|| h.fig9_oratio().unwrap());
    });
}

/// Figure 10(a): the `basic` breakdown on the default query.
fn fig10a_basic_breakdown(c: &mut Criterion) {
    let h = harness();
    let q4 = workload::query(QueryId::Q4);
    let s = h.scenario(QueryId::Q4.target());
    c.bench_function("fig10a/basic-Q4", |b| {
        b.iter(|| evaluate(&q4, &s.mappings, &s.catalog, Algorithm::Basic).unwrap());
    });
}

/// Figures 10(b)/(c): the simple solutions on Q4.
fn fig10bc_simple_solutions(c: &mut Criterion) {
    let h = harness();
    let q4 = workload::query(QueryId::Q4);
    let s = h.scenario(QueryId::Q4.target());
    let mut group = c.benchmark_group("fig10bc");
    for algorithm in [Algorithm::Basic, Algorithm::EBasic, Algorithm::EMqo] {
        group.bench_with_input(
            BenchmarkId::from_parameter(algorithm.name()),
            &algorithm,
            |b, &alg| b.iter(|| evaluate(&q4, &s.mappings, &s.catalog, alg).unwrap()),
        );
    }
    group.finish();
}

/// Figures 11(a)–(c): e-basic vs q-sharing vs o-sharing on Q4.
fn fig11_sharing(c: &mut Criterion) {
    let h = harness();
    let q4 = workload::query(QueryId::Q4);
    let s = h.scenario(QueryId::Q4.target());
    let mut group = c.benchmark_group("fig11/sharing");
    for algorithm in [
        Algorithm::EBasic,
        Algorithm::QSharing,
        Algorithm::OSharing(Strategy::Sef),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(algorithm.name()),
            &algorithm,
            |b, &alg| b.iter(|| evaluate(&q4, &s.mappings, &s.catalog, alg).unwrap()),
        );
    }
    group.finish();
}

/// Figure 11(d): number of selection operators.
fn fig11d_selections(c: &mut Criterion) {
    let h = harness();
    let s = h.scenario(urm_datagen::TargetSchemaKind::Excel);
    let mut group = c.benchmark_group("fig11d/selections");
    for n in 1..=5usize {
        let query = workload::selection_sweep(n).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &query, |b, q| {
            b.iter(|| {
                evaluate(
                    q,
                    &s.mappings,
                    &s.catalog,
                    Algorithm::OSharing(Strategy::Sef),
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

/// Figure 11(e): number of Cartesian product operators.
fn fig11e_products(c: &mut Criterion) {
    let h = harness();
    let s = h.scenario(urm_datagen::TargetSchemaKind::Excel);
    let mut group = c.benchmark_group("fig11e/products");
    for n in 1..=3usize {
        let query = workload::product_sweep(n).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &query, |b, q| {
            b.iter(|| {
                evaluate(
                    q,
                    &s.mappings,
                    &s.catalog,
                    Algorithm::OSharing(Strategy::Sef),
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

/// Figure 11(f) / Table IV: operator-selection strategies on Q4.
fn fig11f_strategies(c: &mut Criterion) {
    let h = harness();
    let q4 = workload::query(QueryId::Q4);
    let s = h.scenario(QueryId::Q4.target());
    let mut group = c.benchmark_group("fig11f/strategies");
    for (name, strategy) in [
        ("Random", Strategy::Random { seed: 11 }),
        ("SNF", Strategy::Snf),
        ("SEF", Strategy::Sef),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &strategy, |b, &st| {
            b.iter(|| evaluate(&q4, &s.mappings, &s.catalog, Algorithm::OSharing(st)).unwrap())
        });
    }
    group.finish();
}

/// Figures 12(a)–(c): top-k vs full o-sharing.
fn fig12_topk(c: &mut Criterion) {
    let h = harness();
    let mut group = c.benchmark_group("fig12/topk");
    for (label, id) in [
        ("Q4", QueryId::Q4),
        ("Q7", QueryId::Q7),
        ("Q10", QueryId::Q10),
    ] {
        let query = workload::query(id);
        let s = h.scenario(id.target());
        group.bench_function(BenchmarkId::new("osharing", label), |b| {
            b.iter(|| {
                evaluate(
                    &query,
                    &s.mappings,
                    &s.catalog,
                    Algorithm::OSharing(Strategy::Sef),
                )
                .unwrap()
            })
        });
        group.bench_function(BenchmarkId::new("top1", label), |b| {
            b.iter(|| top_k(&query, &s.mappings, &s.catalog, 1, Strategy::Sef).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = paper;
    config = Criterion::default().sample_size(10);
    targets =
        fig09_oratio,
        fig10a_basic_breakdown,
        fig10bc_simple_solutions,
        fig11_sharing,
        fig11d_selections,
        fig11e_products,
        fig11f_strategies,
        fig12_topk
}
criterion_main!(paper);
