//! Property tests: the scatter-gather sharded service is invisible in answers.
//!
//! For randomly generated (scenario, batch, shard count, partition scheme, per-shard memory
//! budget) tuples, a [`ShardedService`] and a single-node [`QueryService`] answer the same
//! batch over the same epoch — and every answer must match **byte for byte**: same tuples in
//! canonical sorted order, same probabilities to the last bit.  Shard counts 1–4 are drawn
//! (1 exercises the degenerate single-shard runtime), both hash and range cuts, with and
//! without a per-shard spill budget.

use proptest::prelude::*;
use proptest::TestRng;
use urm_core::TargetQuery;
use urm_datagen::replay::parse_spec;
use urm_datagen::scenario::{Scenario, ScenarioConfig, TargetSchemaKind};
use urm_service::{QueryService, ServiceConfig, ShardedService};
use urm_storage::ShardScheme;

/// The Excel-target workload specs random batches are drawn from: every Table III Excel query
/// plus the sweep families — selections, products, join fan-outs and the Zipf-skewed
/// self-joins (aggregate-producing queries ride along inside Q2/Q5, exercising the singleton
/// route next to the scatter route).
const SPEC_POOL: &[&str] = &[
    "Q1", "Q2", "Q3", "Q4", "Q5", "sel:1", "sel:2", "sel:3", "prod:2", "join:2", "join:3",
    "skew:1", "skew:2",
];

fn random_batch(rng: &mut TestRng) -> Vec<TargetQuery> {
    (0..1 + rng.index(5))
        .map(|_| {
            parse_spec(SPEC_POOL[rng.index(SPEC_POOL.len())])
                .expect("pool specs are well-formed")
                .query
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sharded answers ≡ single-node answers, bit for bit, over random scenarios and batches.
    #[test]
    fn sharded_service_is_byte_identical_to_single_node(seed in any::<u64>()) {
        let mut rng = TestRng::seed_from_u64(seed);
        let scenario = Scenario::generate(&ScenarioConfig {
            target: TargetSchemaKind::Excel,
            scale: 4 + rng.index(6),
            mappings: 4 + rng.index(8),
            seed: seed ^ 0x9e37_79b9,
        })
        .expect("scenario generates");
        let shards = 1 + rng.index(4);
        let scheme = [ShardScheme::Hash, ShardScheme::Range][rng.index(2)];
        // One case in four runs every shard under a zero-byte spill budget — everything a
        // shard materialises pages through its own spill pool, and the merge must not care.
        let memory_budget = if rng.index(4) == 0 { Some(0) } else { None };
        let queries = random_batch(&mut rng);

        let config = ServiceConfig {
            workers: 1 + rng.index(2),
            dag_workers: 1 + rng.index(2),
            memory_budget,
            ..ServiceConfig::tiny()
        };
        let single = QueryService::new(config.clone());
        let sharded = ShardedService::new(config, shards, scheme);
        let single_epoch =
            single.register_epoch(scenario.catalog.clone(), scenario.mappings.clone());
        let sharded_epoch =
            sharded.register_epoch(scenario.catalog.clone(), scenario.mappings.clone());

        let expected = single.execute_all(single_epoch, queries.clone()).unwrap();
        let responses = sharded.execute_all(sharded_epoch, queries.clone()).unwrap();
        prop_assert_eq!(expected.len(), responses.len());
        for ((query, a), b) in queries.iter().zip(&expected).zip(&responses) {
            let (sa, sb) = (a.answer.sorted(), b.answer.sorted());
            prop_assert_eq!(
                sa.len(),
                sb.len(),
                "{} × {} {} shards (budget {:?}): answer cardinality",
                query.name(), shards, scheme, memory_budget
            );
            for ((t1, p1), (t2, p2)) in sa.iter().zip(&sb) {
                prop_assert_eq!(
                    t1, t2,
                    "{} × {} {} shards (budget {:?}): tuples",
                    query.name(), shards, scheme, memory_budget
                );
                prop_assert_eq!(
                    p1.to_bits(), p2.to_bits(),
                    "{} × {} {} shards (budget {:?}): probabilities ({} vs {})",
                    query.name(), shards, scheme, memory_budget, p1, p2
                );
            }
        }
        if shards > 1 {
            let metrics = sharded.metrics();
            prop_assert!(metrics.shard_batches >= 1, "no batch took the sharded path");
            prop_assert!(metrics.shard_fanouts > 0, "no roots were fanned out");
        }
    }
}
