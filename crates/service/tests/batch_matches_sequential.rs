//! Integration: a batch of concurrent service submissions returns byte-identical
//! `ProbabilisticAnswer`s to sequential `evaluate(…, Algorithm::OSharing(Strategy::Sef))` on
//! the paper's Figure 2/3 fixtures.

use std::sync::Arc;
use urm_core::{evaluate, testkit, Algorithm, ProbabilisticAnswer, Strategy, TargetQuery};
use urm_service::{QueryService, ServiceConfig, Ticket};

fn fixture_queries() -> Vec<TargetQuery> {
    vec![
        testkit::q0(),
        testkit::q1(),
        testkit::basic_example_query(),
        testkit::q2_product(),
        testkit::count_query(),
        testkit::sum_query(),
    ]
}

fn sequential_sef(query: &TargetQuery) -> ProbabilisticAnswer {
    let catalog = testkit::figure2_catalog();
    let mappings = testkit::figure3_mappings();
    evaluate(
        query,
        &mappings,
        &catalog,
        Algorithm::OSharing(Strategy::Sef),
    )
    .unwrap()
    .answer
}

/// Byte-identical comparison of the reported answers: same tuples, same probabilities to the
/// last bit.  (The diagnostic `empty_probability` mass is deliberately excluded — its
/// accounting differs between algorithms by design and it is not part of the answer.)
fn assert_identical(
    name: &str,
    service_answer: &ProbabilisticAnswer,
    reference: &ProbabilisticAnswer,
) {
    let a = service_answer.sorted();
    let b = reference.sorted();
    assert_eq!(a.len(), b.len(), "{name}: answer cardinality differs");
    for ((t1, p1), (t2, p2)) in a.iter().zip(&b) {
        assert_eq!(t1, t2, "{name}: tuples differ");
        assert_eq!(
            p1.to_bits(),
            p2.to_bits(),
            "{name}: probabilities differ ({p1} vs {p2})"
        );
    }
}

#[test]
fn one_batch_matches_sequential_sef() {
    let service = QueryService::new(ServiceConfig {
        workers: 2,
        batch_max: 64,
        ..ServiceConfig::default()
    });
    let epoch = service.register_epoch(testkit::figure2_catalog(), testkit::figure3_mappings());
    let queries = fixture_queries();
    let responses = service.execute_all(epoch, queries.clone()).unwrap();
    for (query, response) in queries.iter().zip(&responses) {
        assert_identical(query.name(), &response.answer, &sequential_sef(query));
    }
    // Everything landed in one batch and sub-plans were shared across the queries.
    let metrics = service.metrics();
    assert_eq!(metrics.batches, 1);
    assert!(metrics.plan_cache_hits > 0, "no cross-query sharing");
}

#[test]
fn concurrent_submissions_match_sequential_sef() {
    let service = Arc::new(QueryService::new(ServiceConfig {
        workers: 4,
        batch_max: 16,
        ..ServiceConfig::default()
    }));
    let epoch = service.register_epoch(testkit::figure2_catalog(), testkit::figure3_mappings());

    // 6 client threads × 6 queries, interleaved submissions across threads.
    let handles: Vec<_> = (0..6)
        .map(|client| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                let mut queries = fixture_queries();
                queries.rotate_left(client); // different submission orders per client
                let tickets: Vec<(TargetQuery, Ticket)> = queries
                    .into_iter()
                    .map(|q| {
                        let t = service.submit(epoch, q.clone()).unwrap();
                        (q, t)
                    })
                    .collect();
                service.flush();
                tickets
                    .into_iter()
                    .map(|(q, t)| (q, t.wait().unwrap()))
                    .collect::<Vec<_>>()
            })
        })
        .collect();

    for handle in handles {
        for (query, response) in handle.join().unwrap() {
            assert_identical(query.name(), &response.answer, &sequential_sef(&query));
        }
    }
}

#[test]
fn answer_cache_replay_matches_sequential_sef() {
    let service = QueryService::new(ServiceConfig::default());
    let epoch = service.register_epoch(testkit::figure2_catalog(), testkit::figure3_mappings());
    let queries = fixture_queries();
    service.execute_all(epoch, queries.clone()).unwrap();
    // The replay is served from the answer cache — and must still be byte-identical.
    let replay = service.execute_all(epoch, queries.clone()).unwrap();
    for (query, response) in queries.iter().zip(&replay) {
        assert_eq!(
            response.served_from,
            urm_service::ServedFrom::AnswerCache,
            "{} was re-evaluated",
            query.name()
        );
        assert_identical(query.name(), &response.answer, &sequential_sef(query));
    }
}
