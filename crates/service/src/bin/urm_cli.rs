//! `urm-cli` — replay a query workload through the `urm-service` batch server.
//!
//! Loads (or synthesises) a workload, generates one `datagen` scenario per target schema the
//! workload touches, registers each as a service epoch, and replays the workload one or more
//! times, printing per-batch metrics: latency, operators evaluated and cache hit rates.  On the
//! second replay every repeated query is served from the answer cache without evaluation.
//!
//! ```text
//! cargo run --release -p urm-service --bin urm-cli -- --queries 50 --replays 2 --verify
//! cargo run --release -p urm-service --bin urm-cli -- --workload workload.txt --batch-size 32
//! ```

use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::Instant;
use urm_core::{evaluate, Algorithm, Strategy};
use urm_datagen::replay::{parse_workload, synthetic_workload, WorkloadEntry};
use urm_datagen::scenario::{Scenario, ScenarioConfig, TargetSchemaKind};
use urm_service::{EpochId, QueryService, ServiceConfig, Ticket};

struct Args {
    workload: Option<String>,
    queries: usize,
    replays: usize,
    scale: usize,
    mappings: usize,
    seed: u64,
    workers: usize,
    batch_size: usize,
    plan_cache: usize,
    answer_cache: usize,
    verify: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            workload: None,
            queries: 50,
            replays: 2,
            scale: 20,
            mappings: 30,
            seed: 42,
            workers: 4,
            batch_size: 64,
            plan_cache: 512,
            answer_cache: 1024,
            verify: false,
        }
    }
}

const USAGE: &str = "\
urm-cli — replay a query workload through the urm-service batch server

USAGE:
  urm-cli [OPTIONS]

OPTIONS:
  --workload FILE     replay the workload file (Q1..Q10, sel:N, prod:N; 'Q4 x10' repeats)
  --queries N         synthesise an N-query workload instead (default 50)
  --replays R         how many times to replay the workload (default 2)
  --scale N           scenario scale factor (default 20)
  --mappings H        possible mappings per scenario (default 30)
  --seed S            data-generation seed (default 42)
  --workers W         service worker threads (default 4)
  --batch-size B      max queries per batch (default 64)
  --plan-cache N      per-batch shared sub-plan cache capacity (default 512)
  --answer-cache N    service answer cache capacity (default 1024)
  --verify            check every answer against sequential o-sharing(SEF)
  --help              print this help
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--workload" => args.workload = Some(value("--workload")?),
            "--queries" => args.queries = parse_num(&value("--queries")?)?,
            "--replays" => args.replays = parse_num(&value("--replays")?)?,
            "--scale" => args.scale = parse_num(&value("--scale")?)?,
            "--mappings" => args.mappings = parse_num(&value("--mappings")?)?,
            "--seed" => args.seed = parse_num(&value("--seed")?)? as u64,
            "--workers" => args.workers = parse_num(&value("--workers")?)?,
            "--batch-size" => args.batch_size = parse_num(&value("--batch-size")?)?,
            "--plan-cache" => args.plan_cache = parse_num(&value("--plan-cache")?)?,
            "--answer-cache" => args.answer_cache = parse_num(&value("--answer-cache")?)?,
            "--verify" => args.verify = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    Ok(args)
}

fn parse_num(s: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("invalid number '{s}'"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };

    // Load or synthesise the workload.
    let workload: Vec<WorkloadEntry> = match &args.workload {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(err) => {
                    eprintln!("error: cannot read workload '{path}': {err}");
                    return ExitCode::FAILURE;
                }
            };
            match parse_workload(&text) {
                Ok(entries) => entries,
                Err(err) => {
                    eprintln!("error: bad workload '{path}': {err}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => synthetic_workload(args.queries, None),
    };
    if workload.is_empty() {
        eprintln!("error: workload is empty");
        return ExitCode::FAILURE;
    }

    // One scenario / epoch per target schema the workload touches.
    let service = QueryService::new(ServiceConfig {
        workers: args.workers,
        batch_max: args.batch_size,
        plan_cache_capacity: args.plan_cache,
        answer_cache_capacity: args.answer_cache,
    });
    let mut epochs: BTreeMap<String, (EpochId, Scenario)> = BTreeMap::new();
    for kind in TargetSchemaKind::all() {
        if !workload.iter().any(|e| e.target == kind) {
            continue;
        }
        eprintln!(
            "generating scenario: target={kind} scale={} mappings={} seed={} …",
            args.scale, args.mappings, args.seed
        );
        let scenario = match Scenario::generate(&ScenarioConfig {
            target: kind,
            scale: args.scale,
            mappings: args.mappings,
            seed: args.seed,
        }) {
            Ok(s) => s,
            Err(err) => {
                eprintln!("error: scenario generation failed: {err}");
                return ExitCode::FAILURE;
            }
        };
        let epoch = service.register_epoch(scenario.catalog.clone(), scenario.mappings.clone());
        epochs.insert(kind.to_string(), (epoch, scenario));
    }

    println!(
        "workload: {} queries over {} epoch(s); replays={} batch-size={} workers={}",
        workload.len(),
        epochs.len(),
        args.replays,
        args.batch_size,
        args.workers
    );

    let mut verify_failures = 0usize;
    let mut references: BTreeMap<String, urm_core::ProbabilisticAnswer> = BTreeMap::new();
    let mut reported_batches = 0usize;
    for replay in 1..=args.replays.max(1) {
        let before = service.metrics();
        let start = Instant::now();

        let tickets: Vec<(usize, Ticket)> = workload
            .iter()
            .enumerate()
            .map(|(i, entry)| {
                let (epoch, _) = epochs[&entry.target.to_string()];
                let ticket = service
                    .submit(epoch, entry.query.clone())
                    .expect("registered epoch");
                (i, ticket)
            })
            .collect();
        service.flush();
        let responses: Vec<_> = tickets
            .into_iter()
            .map(|(i, t)| (i, t.wait().expect("service answered")))
            .collect();
        let elapsed = start.elapsed();
        let after = service.metrics();

        println!(
            "\n== replay {replay} ({:.1} ms) ==",
            elapsed.as_secs_f64() * 1000.0
        );
        for report in service.reports().iter().skip(reported_batches) {
            reported_batches += 1;
            println!(
                "  batch#{:<3} epoch#{:<2} queries={:<3} evaluated={:<3} cache-served={:<3} \
                 plan hits/misses={}/{} ops={} latency={:.1}ms",
                report.id,
                report.epoch,
                report.queries,
                report.evaluated,
                report.served_from_cache,
                report.plan_hits,
                report.plan_misses,
                report.source_operators,
                report.latency.as_secs_f64() * 1000.0
            );
        }
        println!(
            "  answer-cache hits: {} | evaluated: {} | shared sub-plan hits: {} | operators: {}",
            after.answer_cache_hits - before.answer_cache_hits,
            after.queries_evaluated - before.queries_evaluated,
            after.plan_cache_hits - before.plan_cache_hits,
            after.source_operators - before.source_operators,
        );

        if args.verify {
            for (i, response) in &responses {
                let entry = &workload[*i];
                let (_, scenario) = &epochs[&entry.target.to_string()];
                // Memoise references per distinct query: sequential evaluation is the very
                // cost the service amortises, so don't pay it once per duplicate per replay.
                let reference_key = format!("{}::{}", entry.target, entry.query);
                let reference = references.entry(reference_key).or_insert_with(|| {
                    evaluate(
                        &entry.query,
                        &scenario.mappings,
                        &scenario.catalog,
                        Algorithm::OSharing(Strategy::Sef),
                    )
                    .expect("sequential evaluation")
                    .answer
                });
                if !reference.approx_eq(&response.answer, 1e-9) {
                    verify_failures += 1;
                    eprintln!(
                        "VERIFY FAIL (replay {replay}): {} disagrees with sequential o-sharing(SEF)",
                        entry.label
                    );
                }
            }
            println!(
                "  verify: {}",
                if verify_failures == 0 {
                    "all answers match sequential o-sharing(SEF)"
                } else {
                    "FAILURES"
                }
            );
        }
    }

    let metrics = service.metrics();
    println!(
        "\ntotals: submitted={} evaluated={} batches={} deduped={} \
         answer-cache hit rate={:.0}% plan-cache hit rate={:.0}% operators={}",
        metrics.queries_submitted,
        metrics.queries_evaluated,
        metrics.batches,
        metrics.batch_deduped,
        metrics.answer_hit_rate() * 100.0,
        metrics.plan_hit_rate() * 100.0,
        metrics.source_operators,
    );
    println!(
        "executor: {:.0} rows/sec, {} rows served zero-copy (shared views)",
        metrics.rows_per_second(),
        metrics.rows_shared,
    );
    service.shutdown();

    if verify_failures > 0 {
        eprintln!("error: {verify_failures} verification failure(s)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
