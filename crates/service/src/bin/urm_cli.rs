//! `urm-cli` — replay a query workload through the `urm-service` batch server, or through any
//! of the paper's five sequential algorithms.
//!
//! Loads (or synthesises) a workload, generates one `datagen` scenario per target schema the
//! workload touches, and replays the workload one or more times.  Under the default
//! `--algorithm service` the queries go through the batch server (per-epoch batching, batch
//! DAG with parallel scheduling, answer cache) and per-batch metrics are printed: latency,
//! distinct DAG nodes, dedup and cache hit rates.  Under `--algorithm basic|e-basic|e-mqo|
//! q-sharing|o-sharing` every query is evaluated sequentially with that algorithm, printing
//! the same metrics table for apples-to-apples comparison.
//!
//! ```text
//! cargo run --release -p urm-service --bin urm-cli -- --queries 50 --replays 2 --verify
//! cargo run --release -p urm-service --bin urm-cli -- --workload workloads/joinheavy.txt \
//!     --algorithm q-sharing
//! ```

use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::{Duration, Instant};
use urm_core::{evaluate, Algorithm, Strategy};
use urm_datagen::replay::{parse_workload, synthetic_workload, WorkloadEntry};
use urm_datagen::scenario::{Scenario, ScenarioConfig, TargetSchemaKind};
use urm_service::{EpochId, QueryService, ServiceConfig, Ticket};
use urm_storage::ShardScheme;

/// What executes the workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// The concurrent batch service (DAG scheduler, answer cache).
    Service,
    /// One of the paper's sequential algorithms.
    Sequential(Algorithm),
}

fn parse_mode(name: &str) -> Result<Mode, String> {
    match name.to_ascii_lowercase().as_str() {
        "service" => Ok(Mode::Service),
        "basic" => Ok(Mode::Sequential(Algorithm::Basic)),
        "e-basic" | "ebasic" => Ok(Mode::Sequential(Algorithm::EBasic)),
        "e-mqo" | "emqo" => Ok(Mode::Sequential(Algorithm::EMqo)),
        "q-sharing" | "qsharing" => Ok(Mode::Sequential(Algorithm::QSharing)),
        "o-sharing" | "osharing" | "o-sharing-sef" => {
            Ok(Mode::Sequential(Algorithm::OSharing(Strategy::Sef)))
        }
        other => Err(format!(
            "unknown algorithm '{other}' (expected service, basic, e-basic, e-mqo, q-sharing or \
             o-sharing)"
        )),
    }
}

struct Args {
    workload: Option<String>,
    algorithm: Mode,
    queries: usize,
    replays: usize,
    scale: usize,
    mappings: usize,
    seed: u64,
    workers: usize,
    dag_workers: usize,
    batch_size: usize,
    answer_cache: usize,
    epoch_cache: bool,
    pipeline: bool,
    columnar: bool,
    adaptive: bool,
    shards: usize,
    shard_scheme: ShardScheme,
    memory_budget: Option<usize>,
    trace: Option<String>,
    verify: bool,
}

impl Default for Args {
    fn default() -> Self {
        let defaults = ServiceConfig::default();
        Args {
            workload: None,
            algorithm: Mode::Service,
            queries: 50,
            replays: 2,
            scale: 20,
            mappings: 30,
            seed: 42,
            workers: 4,
            dag_workers: defaults.dag_workers,
            batch_size: 64,
            answer_cache: 1024,
            epoch_cache: defaults.epoch_cache,
            pipeline: defaults.pipeline,
            columnar: defaults.columnar,
            adaptive: defaults.adaptive,
            shards: defaults.shards,
            shard_scheme: defaults.shard_scheme,
            memory_budget: defaults.memory_budget,
            trace: None,
            verify: false,
        }
    }
}

const USAGE: &str = "\
urm-cli — replay a query workload through the urm-service batch server or a sequential algorithm

USAGE:
  urm-cli [OPTIONS]

OPTIONS:
  --workload FILE     replay the workload file (Q1..Q10, sel:N, prod:N, join:N; 'Q4 x10' repeats)
  --algorithm A       service (default), basic, e-basic, e-mqo, q-sharing or o-sharing
  --queries N         synthesise an N-query workload instead (default 50)
  --replays R         how many times to replay the workload (default 2)
  --scale N           scenario scale factor (default 20)
  --mappings H        possible mappings per scenario (default 30)
  --seed S            data-generation seed (default 42)
  --workers W         service worker threads (default 4)
  --dag-workers D     intra-batch DAG scheduler threads (default: half the host threads, 1–4)
  --batch-size B      max queries per batch (default 64)
  --answer-cache N    service answer cache capacity (default 1024)
  --epoch-cache on|off
                      keep one persistent DAG per epoch across batches (bind cache + weakly
                      cached node results; default on) — 'off' rebuilds per batch for A/B runs
  --pipeline on|off   two-stage epoch lock (default on): bind the next batch while the current
                      one executes — 'off' holds one lock across the whole batch for A/B runs
  --columnar on|off   evaluate through the vectorized columnar kernels (default on): scanned
                      relations convert once to typed column vectors and selections, joins and
                      aggregates run column-at-a-time — 'off' row-at-a-time for A/B runs;
                      answers are byte-identical either way
  --adaptive on|off   observed-cardinality feedback loop (default on): each epoch records
                      actual per-node output sizes and times, re-prioritises the DAG
                      scheduler, flips hash-join build sides to the smaller observed side and
                      sizes grace-join fan-out from observed bytes — 'off' runs on static
                      estimates for A/B runs; answers are byte-identical either way
  --shards N          scatter-gather across N partitioned shard runtimes (default 1 = the
                      single-node path): each epoch's catalog is deterministically split so
                      shard i holds slice i of every source table, batches fan out to all
                      shards in parallel and the per-shard answers merge back byte-identically
  --shard-scheme S    how relations are split across shards: hash (FNV-1a of the key column,
                      default) or range (contiguous row chunks); answers are byte-identical
                      under either scheme
  --memory-budget B   byte budget for materialised relations, per epoch (per shard with
                      --shards; default: unbudgeted); under a budget, pinned results spill to
                      disk segments and oversized hash joins take the grace (partitioned)
                      path — answers are byte-identical
  --trace FILE        trace every batch and write the merged span trees to FILE as Chrome
                      trace-event JSON (load in chrome://tracing or Perfetto); service mode
                      only.  The service keeps a bounded ring of recent traces, so very long
                      runs keep the newest ones
  --verify            check every answer against an independent sequential algorithm
                      (o-sharing(SEF); basic when --algorithm is o-sharing itself)
  --help              print this help
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--workload" => args.workload = Some(value("--workload")?),
            "--algorithm" => args.algorithm = parse_mode(&value("--algorithm")?)?,
            "--queries" => args.queries = parse_num(&value("--queries")?)?,
            "--replays" => args.replays = parse_num(&value("--replays")?)?,
            "--scale" => args.scale = parse_num(&value("--scale")?)?,
            "--mappings" => args.mappings = parse_num(&value("--mappings")?)?,
            "--seed" => args.seed = parse_num(&value("--seed")?)? as u64,
            "--workers" => args.workers = parse_num(&value("--workers")?)?,
            "--dag-workers" => args.dag_workers = parse_num(&value("--dag-workers")?)?,
            "--batch-size" => args.batch_size = parse_num(&value("--batch-size")?)?,
            "--answer-cache" => args.answer_cache = parse_num(&value("--answer-cache")?)?,
            "--shards" => args.shards = parse_num(&value("--shards")?)?.max(1),
            "--shard-scheme" => args.shard_scheme = value("--shard-scheme")?.parse()?,
            "--memory-budget" => args.memory_budget = Some(parse_num(&value("--memory-budget")?)?),
            "--trace" => args.trace = Some(value("--trace")?),
            "--epoch-cache" => {
                args.epoch_cache = match value("--epoch-cache")?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("--epoch-cache expects on|off, got '{other}'")),
                }
            }
            "--pipeline" => {
                args.pipeline = match value("--pipeline")?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("--pipeline expects on|off, got '{other}'")),
                }
            }
            "--columnar" => {
                args.columnar = match value("--columnar")?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("--columnar expects on|off, got '{other}'")),
                }
            }
            "--adaptive" => {
                args.adaptive = match value("--adaptive")?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("--adaptive expects on|off, got '{other}'")),
                }
            }
            "--verify" => args.verify = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    Ok(args)
}

fn parse_num(s: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("invalid number '{s}'"))
}

/// Verifies responses against memoised references computed with an *independent* algorithm.
struct Verifier {
    reference_algorithm: Algorithm,
    references: BTreeMap<String, urm_core::ProbabilisticAnswer>,
    failures: usize,
}

impl Verifier {
    /// A verifier whose reference algorithm is guaranteed to be a different code path from the
    /// one under test: o-sharing(SEF) by default (fastest sequential algorithm), falling back
    /// to `basic` when the evaluated mode *is* o-sharing — self-verification would be vacuous.
    fn for_mode(mode: Mode) -> Self {
        let reference_algorithm = match mode {
            Mode::Sequential(Algorithm::OSharing(_)) => Algorithm::Basic,
            _ => Algorithm::OSharing(Strategy::Sef),
        };
        Verifier {
            reference_algorithm,
            references: BTreeMap::new(),
            failures: 0,
        }
    }

    fn check(
        &mut self,
        replay: usize,
        entry: &WorkloadEntry,
        scenario: &Scenario,
        answer: &urm_core::ProbabilisticAnswer,
    ) {
        // Memoise references per distinct query: sequential evaluation is the very cost the
        // faster paths amortise, so don't pay it once per duplicate per replay.
        let key = format!("{}::{}", entry.target, entry.query);
        let reference = self.references.entry(key).or_insert_with(|| {
            evaluate(
                &entry.query,
                &scenario.mappings,
                &scenario.catalog,
                self.reference_algorithm,
            )
            .expect("sequential evaluation")
            .answer
        });
        if !reference.approx_eq(answer, 1e-9) {
            self.failures += 1;
            eprintln!(
                "VERIFY FAIL (replay {replay}): {} disagrees with sequential {}",
                entry.label,
                self.reference_algorithm.name()
            );
        }
    }

    fn report(&self) {
        println!(
            "  verify: {}",
            if self.failures == 0 {
                format!(
                    "all answers match sequential {}",
                    self.reference_algorithm.name()
                )
            } else {
                "FAILURES".to_string()
            }
        );
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };

    // Load or synthesise the workload.
    let workload: Vec<WorkloadEntry> = match &args.workload {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(err) => {
                    eprintln!("error: cannot read workload '{path}': {err}");
                    return ExitCode::FAILURE;
                }
            };
            match parse_workload(&text) {
                Ok(entries) => entries,
                Err(err) => {
                    eprintln!("error: bad workload '{path}': {err}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => synthetic_workload(args.queries, None),
    };
    if workload.is_empty() {
        eprintln!("error: workload is empty");
        return ExitCode::FAILURE;
    }

    // One scenario per target schema the workload touches.
    let mut scenarios: BTreeMap<String, Scenario> = BTreeMap::new();
    for kind in TargetSchemaKind::all() {
        if !workload.iter().any(|e| e.target == kind) {
            continue;
        }
        eprintln!(
            "generating scenario: target={kind} scale={} mappings={} seed={} …",
            args.scale, args.mappings, args.seed
        );
        match Scenario::generate(&ScenarioConfig {
            target: kind,
            scale: args.scale,
            mappings: args.mappings,
            seed: args.seed,
        }) {
            Ok(s) => {
                scenarios.insert(kind.to_string(), s);
            }
            Err(err) => {
                eprintln!("error: scenario generation failed: {err}");
                return ExitCode::FAILURE;
            }
        }
    }

    match args.algorithm {
        Mode::Service => run_service(&args, &workload, &scenarios),
        Mode::Sequential(algorithm) => run_sequential(&args, algorithm, &workload, &scenarios),
    }
}

fn run_service(
    args: &Args,
    workload: &[WorkloadEntry],
    scenarios: &BTreeMap<String, Scenario>,
) -> ExitCode {
    let service = QueryService::new(ServiceConfig {
        workers: args.workers,
        batch_max: args.batch_size,
        dag_workers: args.dag_workers,
        answer_cache_capacity: args.answer_cache,
        epoch_cache: args.epoch_cache,
        pipeline: args.pipeline,
        columnar: args.columnar,
        adaptive: args.adaptive,
        shards: args.shards,
        shard_scheme: args.shard_scheme,
        // --trace FILE traces every batch (sample rate 1); otherwise tracing stays off.
        trace_sample: usize::from(args.trace.is_some()),
        memory_budget: args.memory_budget,
    });
    let epochs: BTreeMap<String, EpochId> = scenarios
        .iter()
        .map(|(name, scenario)| {
            let epoch = service.register_epoch(scenario.catalog.clone(), scenario.mappings.clone());
            (name.clone(), epoch)
        })
        .collect();

    println!(
        "workload: {} queries over {} epoch(s); algorithm=service replays={} batch-size={} \
         workers={} dag-workers={} epoch-cache={} pipeline={} columnar={} adaptive={} \
         shards={} scheme={} memory-budget={}",
        workload.len(),
        epochs.len(),
        args.replays,
        args.batch_size,
        args.workers,
        args.dag_workers,
        if args.epoch_cache { "on" } else { "off" },
        if args.pipeline { "on" } else { "off" },
        if args.columnar { "on" } else { "off" },
        if args.adaptive { "on" } else { "off" },
        args.shards,
        args.shard_scheme,
        args.memory_budget
            .map_or_else(|| "off".to_string(), |b| format!("{b}B")),
    );

    let mut verifier = Verifier::for_mode(Mode::Service);
    let mut reported_batches = 0usize;
    for replay in 1..=args.replays.max(1) {
        let before = service.metrics();
        let start = Instant::now();

        let tickets: Vec<(usize, Ticket)> = workload
            .iter()
            .enumerate()
            .map(|(i, entry)| {
                let epoch = epochs[&entry.target.to_string()];
                let ticket = service
                    .submit(epoch, entry.query.clone())
                    .expect("registered epoch");
                (i, ticket)
            })
            .collect();
        service.flush();
        let responses: Vec<_> = tickets
            .into_iter()
            .map(|(i, t)| (i, t.wait().expect("service answered")))
            .collect();
        let elapsed = start.elapsed();
        let after = service.metrics();

        println!(
            "\n== replay {replay} ({:.1} ms) ==",
            elapsed.as_secs_f64() * 1000.0
        );
        let mut replay_latencies: Vec<Duration> = Vec::new();
        for report in service.reports().iter().skip(reported_batches) {
            reported_batches += 1;
            let p = report.latency_percentiles;
            println!(
                "  batch#{:<3} epoch#{:<2} queries={:<3} evaluated={:<3} cache-served={:<3} \
                 dag-nodes={:<4} deduped={:<4} epoch-reuse={:<4} bind-hits={:<4} peak-par={} \
                 ops={} latency={:.1}ms p50={:.1}ms p95={:.1}ms p99={:.1}ms",
                report.id,
                report.epoch,
                report.queries,
                report.evaluated,
                report.served_from_cache,
                report.dag_nodes,
                report.plan_hits,
                report.epoch_results_reused,
                report.epoch_bind_hits,
                report.peak_parallelism,
                report.source_operators,
                report.latency.as_secs_f64() * 1000.0,
                p.p50.as_secs_f64() * 1000.0,
                p.p95.as_secs_f64() * 1000.0,
                p.p99.as_secs_f64() * 1000.0,
            );
        }
        // Per-replay per-query percentiles over the evaluated queries (answer-cache hits
        // record no evaluation time), directly comparable to http_bench's per-phase numbers.
        replay_latencies.extend(
            responses
                .iter()
                .map(|(_, r)| r.metrics.total_time)
                .filter(|t| !t.is_zero()),
        );
        let replay_summary = urm_service::LatencySummary::from_samples(replay_latencies);
        println!(
            "  per-query latency: p50={:.2}ms p95={:.2}ms p99={:.2}ms",
            replay_summary.p50.as_secs_f64() * 1000.0,
            replay_summary.p95.as_secs_f64() * 1000.0,
            replay_summary.p99.as_secs_f64() * 1000.0,
        );
        println!(
            "  answer-cache hits: {} | evaluated: {} | shared DAG nodes reused: {} | operators: {}",
            after.answer_cache_hits - before.answer_cache_hits,
            after.queries_evaluated - before.queries_evaluated,
            after.plan_cache_hits - before.plan_cache_hits,
            after.source_operators - before.source_operators,
        );

        if args.verify {
            for (i, response) in &responses {
                let entry = &workload[*i];
                let scenario = &scenarios[&entry.target.to_string()];
                verifier.check(replay, entry, scenario, &response.answer);
            }
            verifier.report();
        }
    }

    let metrics = service.metrics();
    println!(
        "\ntotals: submitted={} evaluated={} batches={} deduped={} \
         answer-cache hit rate={:.0}% dag-dedup rate={:.0}% operators={}",
        metrics.queries_submitted,
        metrics.queries_evaluated,
        metrics.batches,
        metrics.batch_deduped,
        metrics.answer_hit_rate() * 100.0,
        metrics.plan_hit_rate() * 100.0,
        metrics.source_operators,
    );
    println!(
        "dag: {} distinct nodes executed, {} operator insertions deduplicated, peak parallelism {}",
        metrics.dag_nodes_executed, metrics.dag_operators_deduped, metrics.dag_peak_parallelism,
    );
    println!(
        "epoch-dag: {} node executions skipped ({:.0}% reuse rate), {} rebinds skipped",
        metrics.epoch_results_reused,
        metrics.epoch_reuse_rate() * 100.0,
        metrics.epoch_bind_hits,
    );
    println!(
        "executor: {:.0} rows/sec, {} rows served zero-copy (shared views)",
        metrics.rows_per_second(),
        metrics.rows_shared,
    );
    println!(
        "columnar: {} rows produced by vectorized kernels",
        metrics.columnar_rows,
    );
    println!(
        "adaptive: {} nodes scheduled on observed cardinalities, {} join build sides flipped",
        metrics.observed_nodes, metrics.reordered_joins,
    );
    // Mirror the spill/single-thread convention: an unsharded run prints n/a, never a
    // misleading 0 that reads as "sharded but idle".
    if args.shards > 1 {
        println!(
            "shard: {} batches fanned out across {} shards ({} root fan-outs), per-shard \
             p95={:.2}ms, merge time={:.2}ms",
            metrics.shard_batches,
            args.shards,
            metrics.shard_fanouts,
            metrics.shard_latency.p95.as_secs_f64() * 1000.0,
            metrics.shard_merge_time.as_secs_f64() * 1000.0,
        );
    } else {
        println!("shard: n/a (run with --shards N)");
    }
    match args.memory_budget {
        Some(budget) => println!(
            "spill: budget={budget} bytes, {} bytes spilled ({} raw → {} encoded segment bytes), \
             {} reloads, {} grace partitions",
            metrics.bytes_spilled,
            metrics.segment_bytes_raw,
            metrics.segment_bytes_encoded,
            metrics.spill_reloads,
            metrics.grace_partitions,
        ),
        None => println!("spill: n/a (no --memory-budget)"),
    }
    if let Some(path) = &args.trace {
        let traces = service.finished_traces();
        let spans: usize = traces.iter().map(|t| t.spans().len()).sum();
        match std::fs::write(path, urm_service::merge_chrome_json(&traces)) {
            Ok(()) => println!(
                "trace: {} trace(s), {spans} spans written to {path} (chrome://tracing)",
                traces.len()
            ),
            Err(err) => {
                eprintln!("error: cannot write trace '{path}': {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    service.shutdown();

    if verifier.failures > 0 {
        eprintln!("error: {} verification failure(s)", verifier.failures);
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn run_sequential(
    args: &Args,
    algorithm: Algorithm,
    workload: &[WorkloadEntry],
    scenarios: &BTreeMap<String, Scenario>,
) -> ExitCode {
    if args.memory_budget.is_some() {
        eprintln!(
            "warning: --memory-budget applies to --algorithm service only; the sequential \
             algorithms run unbudgeted"
        );
    }
    println!(
        "workload: {} queries over {} scenario(s); algorithm={} replays={}",
        workload.len(),
        scenarios.len(),
        algorithm.name(),
        args.replays,
    );

    let mut verifier = Verifier::for_mode(Mode::Sequential(algorithm));
    let mut total_ops = 0u64;
    let mut total_evaluated = 0u64;
    let mut total_exec = Duration::ZERO;
    let mut total_tuples = 0u64;
    let mut total_shared_hits = 0u64;
    for replay in 1..=args.replays.max(1) {
        let start = Instant::now();
        let mut replay_ops = 0u64;
        let mut replay_hits = 0u64;
        for entry in workload {
            let scenario = &scenarios[&entry.target.to_string()];
            let eval = match evaluate(
                &entry.query,
                &scenario.mappings,
                &scenario.catalog,
                algorithm,
            ) {
                Ok(eval) => eval,
                Err(err) => {
                    eprintln!(
                        "error: {} failed on {}: {err}",
                        algorithm.name(),
                        entry.label
                    );
                    return ExitCode::FAILURE;
                }
            };
            replay_ops += eval.metrics.source_operators();
            replay_hits += eval.metrics.shared_plan_hits;
            total_exec += eval.metrics.evaluation_time();
            total_tuples += eval.metrics.exec.tuples_read + eval.metrics.exec.tuples_output;
            if args.verify {
                verifier.check(replay, entry, scenario, &eval.answer);
            }
        }
        let elapsed = start.elapsed();
        total_ops += replay_ops;
        total_shared_hits += replay_hits;
        total_evaluated += workload.len() as u64;

        println!(
            "\n== replay {replay} ({:.1} ms) ==",
            elapsed.as_secs_f64() * 1000.0
        );
        println!(
            "  evaluated: {} | shared DAG nodes reused: {replay_hits} | operators: {replay_ops}",
            workload.len(),
        );
        if args.verify {
            verifier.report();
        }
    }

    println!(
        "\ntotals: submitted={} evaluated={} batches=0 deduped=0 \
         answer-cache hit rate=0% dag-dedup rate={:.0}% operators={}",
        total_evaluated,
        total_evaluated,
        if total_shared_hits + total_ops == 0 {
            0.0
        } else {
            total_shared_hits as f64 / (total_shared_hits + total_ops) as f64 * 100.0
        },
        total_ops,
    );
    println!("epoch-dag: n/a (sequential algorithms evaluate query by query)");
    println!(
        "executor: {:.0} rows/sec, sequential {} evaluation",
        if total_exec.as_secs_f64() == 0.0 {
            0.0
        } else {
            total_tuples as f64 / total_exec.as_secs_f64()
        },
        algorithm.name(),
    );

    if verifier.failures > 0 {
        eprintln!("error: {} verification failure(s)", verifier.failures);
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
