//! Service tuning knobs.

/// Configuration of a [`QueryService`](crate::QueryService).
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of worker threads executing batches (at least 1).
    pub workers: usize,
    /// Maximum queries per batch; a pending epoch queue is dispatched as soon as it reaches
    /// this size (or when [`flush`](crate::QueryService::flush) is called).
    pub batch_max: usize,
    /// Capacity of the per-batch shared sub-plan cache (materialised relations, LRU-evicted).
    pub plan_cache_capacity: usize,
    /// Capacity of the service-wide answer cache (entries, LRU-evicted).
    pub answer_cache_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            batch_max: 64,
            plan_cache_capacity: 512,
            answer_cache_capacity: 1024,
        }
    }
}

impl ServiceConfig {
    /// A config suited to tests: single worker, tiny caches.
    #[must_use]
    pub fn tiny() -> Self {
        ServiceConfig {
            workers: 1,
            batch_max: 8,
            plan_cache_capacity: 32,
            answer_cache_capacity: 32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_positive() {
        let c = ServiceConfig::default();
        assert!(c.workers >= 1);
        assert!(c.batch_max >= 1);
        assert!(c.plan_cache_capacity >= 1);
        assert!(c.answer_cache_capacity >= 1);
    }
}
