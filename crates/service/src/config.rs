//! Service tuning knobs.

use urm_storage::ShardScheme;

/// Configuration of a [`QueryService`](crate::QueryService).
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of worker threads executing batches (at least 1).
    pub workers: usize,
    /// Maximum queries per batch; a pending epoch queue is dispatched as soon as it reaches
    /// this size (or when [`flush`](crate::QueryService::flush) is called).
    pub batch_max: usize,
    /// Worker threads of the intra-batch DAG scheduler: each batch is merged into one
    /// shared-operator DAG whose independent ready nodes run on this many scoped threads
    /// (1 = sequential topological execution).
    pub dag_workers: usize,
    /// Capacity of the service-wide answer cache (entries, LRU-evicted).
    pub answer_cache_capacity: usize,
    /// Whether each epoch keeps a persistent shared-operator DAG across its batches
    /// (bind cache + weakly cached node results, byte-budgeted LRU pinning), so a hot epoch's
    /// later batches skip rebinding and re-executing still-materialised operators.  `false`
    /// rebuilds the DAG from scratch per batch (the pre-epoch behaviour; `urm-cli
    /// --epoch-cache off` A/Bs the two).
    pub epoch_cache: bool,
    /// Whether batches of one epoch run through the two-stage bind/execute pipeline: the
    /// epoch's bind lock is held only while a batch is rewritten, optimised and bound, so
    /// batch N+1's bind stage overlaps batch N's execution (executions still serialise, on
    /// the engine's internal result lock — answers are byte-identical either way).  `false`
    /// holds one lock across the whole batch (the pre-pipeline behaviour; `http_bench` A/Bs
    /// the two).  Only meaningful with [`epoch_cache`](ServiceConfig::epoch_cache) on and at
    /// least two workers.
    pub pipeline: bool,
    /// Whether batch executors evaluate through the vectorized columnar kernels: scanned
    /// base relations are converted once to typed per-column vectors (cached per catalog),
    /// and selections, joins and aggregates over them run column-at-a-time driven by
    /// selection vectors.  Answers are byte-identical either way — the toggle (`urm-cli
    /// --columnar off`) exists for A/B timing and forensics.  Columnar work is reported in
    /// [`ServiceMetrics::columnar_rows`](crate::ServiceMetrics).
    pub columnar: bool,
    /// Whether each epoch runs the adaptive-execution feedback loop: observed per-node output
    /// cardinalities (and execution times) replace the optimizer's static estimates in the
    /// DAG scheduler's priorities, pick the smaller observed side as each hash join's build
    /// side, and size grace-join fan-out / admission from observed build-side bytes.  Answers
    /// are byte-identical either way — the toggle (`urm-cli --adaptive off`) exists for A/B
    /// timing.  Feedback work is reported in
    /// [`ServiceMetrics::observed_nodes`](crate::ServiceMetrics) /
    /// [`reordered_joins`](crate::ServiceMetrics).
    pub adaptive: bool,
    /// Number of shards each epoch's catalog is partitioned into (1 = unsharded, the classic
    /// single-node path; the two are byte-identical).
    ///
    /// With `shards > 1`, every registered epoch carries a scatter-gather runtime
    /// ([`ShardSet`](urm_core::ShardSet)): source relations are deterministically partitioned
    /// by key so shard *i* holds slice *i* of every table (plus a full replica for the
    /// non-sliced side of joins), and each batch is fanned out to all shards in parallel —
    /// per-shard answers are merged back into the canonical probability-descending order.
    /// Shard work is reported in [`ServiceMetrics::shard_fanouts`](crate::ServiceMetrics) /
    /// [`shard_merge_time`](crate::ServiceMetrics) (`urm-cli --shards N` A/Bs the two paths).
    pub shards: usize,
    /// How source relations are split across shards ([`Hash`](ShardScheme::Hash) on the key
    /// attribute, or contiguous [`Range`](ShardScheme::Range) chunks).  Ignored with
    /// [`shards`](ServiceConfig::shards) = 1.  Answers are byte-identical under either scheme.
    pub shard_scheme: ShardScheme,
    /// Trace-sampling rate for batches: 0 = off (the default — a disabled tracer is a no-op
    /// on every hot path), N ≥ 1 = every Nth batch records a full span tree (`batch` →
    /// `rewrite`/`optimize_bind`/`execute`/`aggregate` → per-DAG-node `node` spans, plus spill
    /// and shard spans).  Finished traces land in the service's bounded recent-traces ring
    /// ([`finished_traces`](crate::QueryService::finished_traces)); the HTTP layer also
    /// force-traces any request carrying an `X-Trace-Id` header regardless of this knob
    /// (`urm-server --trace-sample N`, `urm-cli --trace out.json`).
    pub trace_sample: usize,
    /// Byte budget for materialised relations, per epoch (`None` = unbudgeted, all in memory).
    ///
    /// With a budget, each epoch owns a spill [`BufferPool`](urm_storage::BufferPool): pinned
    /// node results are spill-backed (paged out to disk segments under pressure, reloaded
    /// transparently), and hash joins whose build side exceeds *half* the budget take the
    /// grace (partitioned) path — so workloads bigger than RAM complete instead of OOMing,
    /// with byte-identical answers.  Spill work is reported in
    /// [`ServiceMetrics`](crate::ServiceMetrics) (`bytes_spilled`, `spill_reloads`,
    /// `grace_partitions`).
    pub memory_budget: Option<usize>,
}

/// A conservative default for the intra-batch scheduler: half the hardware threads (the other
/// half is left to the batch worker pool, which runs several batches concurrently), capped at 4
/// and degrading to sequential (1) on a single-core host — where parallel scheduling measurably
/// loses to the topological walk.  Hosts with many cores and few concurrent batches should
/// raise this explicitly.
fn default_dag_workers() -> usize {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    (threads / 2).clamp(1, 4)
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            batch_max: 64,
            dag_workers: default_dag_workers(),
            answer_cache_capacity: 1024,
            epoch_cache: true,
            pipeline: true,
            columnar: true,
            adaptive: true,
            shards: 1,
            shard_scheme: ShardScheme::Hash,
            trace_sample: 0,
            memory_budget: None,
        }
    }
}

impl ServiceConfig {
    /// A config suited to tests: single worker, tiny caches, two DAG workers.
    #[must_use]
    pub fn tiny() -> Self {
        ServiceConfig {
            workers: 1,
            batch_max: 8,
            dag_workers: 2,
            answer_cache_capacity: 32,
            epoch_cache: true,
            pipeline: true,
            columnar: true,
            adaptive: true,
            shards: 1,
            shard_scheme: ShardScheme::Hash,
            trace_sample: 0,
            memory_budget: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_positive() {
        let c = ServiceConfig::default();
        assert!(c.workers >= 1);
        assert!(c.batch_max >= 1);
        assert!((1..=4).contains(&c.dag_workers));
        assert!(c.answer_cache_capacity >= 1);
        assert_eq!(c.shards, 1, "sharding must be opt-in");
        assert_eq!(c.shard_scheme, ShardScheme::Hash);
    }
}
