//! The query service: epochs, batching, the worker pool.

use crate::answer_cache::{AnswerCache, CachedAnswer};
use crate::config::ServiceConfig;
use crate::metrics::{BatchReport, LatencySummary, ServiceMetrics};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use urm_core::metrics::EvalMetrics;
use urm_core::{
    evaluate_batch, evaluate_batch_epoch, evaluate_batch_sharded, execute_prepared_batch,
    prepare_batch_epoch_traced, BatchOptions, EpochDag, ShardSet, ShardStats,
};
use urm_core::{CoreError, ProbabilisticAnswer, TargetQuery};
use urm_engine::CardinalityStore;
use urm_matching::MappingSet;
use urm_obs::{HistSnapshot, Histogram, TraceReport, Tracer};
use urm_storage::Catalog;

/// How many [`BatchReport`]s the service retains for inspection.
const RETAINED_REPORTS: usize = 4096;

/// How many finished [`TraceReport`]s the service retains (ring, oldest evicted first).
const RETAINED_TRACES: usize = 32;

/// Identifier of a registered (catalog, mapping set) epoch.
///
/// Epochs are immutable: re-matching or loading new data registers a *new* epoch, which also
/// versions the answer cache — cached answers of old epochs can never be confused with new ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EpochId(u64);

impl EpochId {
    /// The raw id (used as the answer-cache key component).
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds an id from its raw value (test / tooling use).
    #[must_use]
    pub fn from_raw(raw: u64) -> Self {
        EpochId(raw)
    }
}

impl fmt::Display for EpochId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "epoch#{}", self.0)
    }
}

/// Errors surfaced by the service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The submission referenced an epoch that was never registered.
    UnknownEpoch(EpochId),
    /// Evaluation of the batch containing the query failed.
    Eval(String),
    /// The service shut down before the query was answered.
    Shutdown,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownEpoch(id) => write!(f, "unknown {id}"),
            ServiceError::Eval(msg) => write!(f, "evaluation failed: {msg}"),
            ServiceError::Shutdown => f.write_str("service shut down"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<CoreError> for ServiceError {
    fn from(err: CoreError) -> Self {
        ServiceError::Eval(err.to_string())
    }
}

/// Result alias for service operations.
pub type ServiceResult<T> = Result<T, ServiceError>;

/// How a response was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedFrom {
    /// Evaluated in a batch.
    Evaluated,
    /// Answered from the service answer cache without evaluation.
    AnswerCache,
    /// Duplicate of another query in the same batch; shared its evaluation.
    BatchDedup,
}

/// The answer to one submitted query.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// The probabilistic answer (shared: cache hits and in-batch duplicates alias the same
    /// allocation instead of deep-copying it).
    pub answer: Arc<ProbabilisticAnswer>,
    /// Work accounting for the evaluation that produced the answer (zeroed for cache hits).
    pub metrics: EvalMetrics,
    /// How the answer was produced.
    pub served_from: ServedFrom,
    /// The batch that evaluated the answer (for cache hits: the batch that originally did).
    pub batch: u64,
}

/// A claim on a submitted query's future response.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<ServiceResult<QueryResponse>>,
}

impl Ticket {
    /// Blocks until the response is available.
    pub fn wait(self) -> ServiceResult<QueryResponse> {
        self.rx.recv().unwrap_or(Err(ServiceError::Shutdown))
    }
}

struct Epoch {
    catalog: Catalog,
    mappings: MappingSet,
    /// The epoch's persistent shared-operator DAG (bind cache + weak result cache).  Batches
    /// of one epoch serialise on this lock while they execute — worker-pool parallelism comes
    /// from batches of *different* epochs, DAG-scheduler parallelism from within the batch.
    /// Dropped with the epoch, which is what keeps identity-based fingerprints safe.
    dag: Mutex<EpochDag>,
    /// Exponentially-decayed average *source operators per evaluated query* observed on this
    /// epoch (0 = nothing evaluated yet).  The admission layer charges requests against this
    /// instead of a flat per-query unit once the epoch has history — the serving-side arm of
    /// the adaptive feedback loop.
    observed_cost: AtomicU64,
    /// The epoch's scatter-gather runtime when the service runs sharded
    /// ([`ServiceConfig::shards`] > 1): N shard catalogs (full replicas + per-shard slices)
    /// each with its own persistent DAG.  `None` on the classic single-node path.
    shard_set: Option<ShardSet>,
}

struct Submission {
    query: TargetQuery,
    /// The query's canonical `Debug` rendering: the exact dedup and cache key.  `Debug` (not
    /// `Display`) because `Display` erases value type tags — `Int(1)` and `Text("1")` both
    /// render as `1` — while the derived `Debug` output is injective.
    key: String,
    responder: mpsc::Sender<ServiceResult<QueryResponse>>,
    /// Per-request tracer (disabled unless the submission came in with a trace id, e.g. via
    /// the HTTP layer's `X-Trace-Id`).  The batch adopts the first enabled one it finds.
    tracer: Tracer,
}

struct Batch {
    id: u64,
    epoch_id: EpochId,
    epoch: Arc<Epoch>,
    submissions: Vec<Submission>,
}

struct Inner {
    config: ServiceConfig,
    epoch_counter: AtomicU64,
    batch_counter: AtomicU64,
    epochs: RwLock<HashMap<u64, Arc<Epoch>>>,
    pending: Mutex<HashMap<u64, Vec<Submission>>>,
    answer_cache: Mutex<AnswerCache>,
    /// The running counters; the answer-cache fields are filled in at snapshot time.
    metrics: Mutex<ServiceMetrics>,
    reports: Mutex<Vec<BatchReport>>,
    /// Observed cardinalities carried across epoch retirement, keyed by plan fingerprint:
    /// [`drop_epoch`](QueryService::drop_epoch) folds the retired epoch's store in here, and
    /// [`register_epoch`](QueryService::register_epoch) seeds each fresh DAG from it — so a
    /// cold-after-retirement batch over the same catalog reorders joins immediately instead of
    /// re-learning from static estimates.
    carryover: CardinalityStore,
    /// Bounded per-shard execution-time samples (one per shard per sharded batch), feeding the
    /// service-wide [`ServiceMetrics::shard_latency`] percentiles at snapshot time.
    shard_samples: Mutex<Vec<Duration>>,
    /// Lock-free per-stage latency histograms (log-bucketed, ≤12.5% relative error) — recorded
    /// on every batch regardless of tracing, snapshotted by
    /// [`stage_histograms`](QueryService::stage_histograms) for the Prometheus exposition.
    stages: StageHistograms,
    /// Bounded ring of finished trace reports (newest last), drained read-only by
    /// `GET /debug/traces` and `urm-cli --trace`.
    traces: Mutex<VecDeque<TraceReport>>,
}

/// One log-bucketed histogram per pipeline stage plus the whole-batch and per-query envelopes.
/// All increments are atomic — batches on different workers record concurrently, lock-free.
#[derive(Default)]
struct StageHistograms {
    /// Per-query reformulation (rewrite) time.
    rewrite: Histogram,
    /// Per-query optimise + bind time.
    plan: Histogram,
    /// Batch-wide DAG execution time.
    execute: Histogram,
    /// Per-query probability-aggregation time.
    aggregate: Histogram,
    /// Per-query wall clock, submission to aggregation.
    query: Histogram,
    /// Whole-batch wall clock.
    batch: Histogram,
}

impl StageHistograms {
    fn snapshot(&self) -> Vec<(&'static str, HistSnapshot)> {
        vec![
            ("rewrite", self.rewrite.snapshot()),
            ("plan", self.plan.snapshot()),
            ("execute", self.execute.snapshot()),
            ("aggregate", self.aggregate.snapshot()),
            ("query", self.query.snapshot()),
            ("batch", self.batch.snapshot()),
        ]
    }
}

impl Inner {
    fn respond(
        submission: &Submission,
        answer: Arc<ProbabilisticAnswer>,
        metrics: EvalMetrics,
        served_from: ServedFrom,
        batch: u64,
    ) {
        // A dropped ticket just means the client stopped waiting; nothing to do.
        let _ = submission.responder.send(Ok(QueryResponse {
            answer,
            metrics,
            served_from,
            batch,
        }));
    }

    /// Executes one batch on a worker thread.
    fn process_batch(&self, batch: Batch) {
        let start = Instant::now();
        let total = batch.submissions.len();

        // Adopt the first request-scoped tracer in the batch (HTTP `X-Trace-Id` propagation);
        // otherwise sample every Nth batch when configured.  A disabled tracer is a no-op on
        // every span site below.
        let tracer = batch
            .submissions
            .iter()
            .map(|s| s.tracer.clone())
            .find(Tracer::is_enabled)
            .unwrap_or_else(|| match self.config.trace_sample as u64 {
                0 => Tracer::disabled(),
                n if batch.id.is_multiple_of(n) => Tracer::enabled(format!("batch-{}", batch.id)),
                _ => Tracer::disabled(),
            });
        let mut batch_span = tracer.span("batch");
        batch_span.tag("batch", batch.id);
        batch_span.tag("epoch", batch.epoch_id.raw());
        batch_span.tag("queries", total as u64);

        // Re-check the answer cache: an earlier batch may have answered a query that missed
        // at submission time.  (`recheck` does not count a second miss for these.)  Responses
        // are deferred until the batch is accounted, like every other response of the batch.
        let mut cached_hits: Vec<(Submission, CachedAnswer)> = Vec::new();
        let mut remaining = Vec::with_capacity(total);
        {
            let mut cache = self.answer_cache.lock().unwrap();
            for submission in batch.submissions {
                match cache.recheck(batch.epoch_id, &submission.key) {
                    Some(found) => cached_hits.push((submission, found)),
                    None => remaining.push(submission),
                }
            }
        }
        let served_from_cache = cached_hits.len();

        // Deduplicate within the batch: identical queries (by canonical rendering, an exact
        // comparison) share one evaluation, in first-submission order.
        let mut order: Vec<String> = Vec::new();
        let mut groups: HashMap<String, Vec<Submission>> = HashMap::new();
        for submission in remaining {
            let entry = groups.entry(submission.key.clone()).or_default();
            if entry.is_empty() {
                order.push(submission.key.clone());
            }
            entry.push(submission);
        }
        let unique: Vec<TargetQuery> = order
            .iter()
            .map(|key| groups[key][0].query.clone())
            .collect();

        // Merge every distinct query's plans into the epoch's persistent DAG (or a throwaway
        // one when the epoch cache is off) and execute each distinct operator this batch still
        // needs exactly once, on the configured number of scheduler workers.
        let options = BatchOptions::parallel(self.config.dag_workers)
            .with_columnar(self.config.columnar)
            .with_adaptive(self.config.adaptive)
            .with_tracer(tracer.clone());
        let outcome: Result<_, CoreError> = if let Some(set) = &batch.epoch.shard_set {
            // Scatter-gather: fan the distinct queries out to the epoch's shard runtimes in
            // parallel and merge the per-shard answers back into the canonical order.  The
            // shard DAGs *are* the epoch cache here (each shard keeps its own persistent DAG),
            // so this branch supersedes the epoch_cache/pipeline toggles.
            evaluate_batch_sharded(
                &unique,
                &batch.epoch.mappings,
                &batch.epoch.catalog,
                &options,
                set,
            )
            .map(|sharded| (sharded.batch, Some(sharded.shards)))
        } else if self.config.epoch_cache {
            if self.config.pipeline {
                // The two-stage pipeline: the epoch's bind lock is held only while this batch
                // is rewritten, optimised and bound — so another worker can already bind the
                // epoch's *next* batch while this one executes below.  Executions of one
                // epoch still serialise, on the engine's internal result lock.
                let prepared = {
                    let mut epoch_dag = batch.epoch.dag.lock().unwrap();
                    prepare_batch_epoch_traced(
                        &unique,
                        &batch.epoch.mappings,
                        &batch.epoch.catalog,
                        &mut epoch_dag,
                        &tracer,
                    )
                };
                prepared
                    .and_then(|p| execute_prepared_batch(p, &batch.epoch.catalog, &options))
                    .map(|o| (o, None))
            } else {
                let mut epoch_dag = batch.epoch.dag.lock().unwrap();
                evaluate_batch_epoch(
                    &unique,
                    &batch.epoch.mappings,
                    &batch.epoch.catalog,
                    &options,
                    &mut epoch_dag,
                )
                .map(|o| (o, None))
            }
        } else if let Some(budget) = self.config.memory_budget {
            // Rebuild-per-batch, but the byte budget still holds: a *throwaway* budgeted
            // epoch gives this batch grace joins and spill-backed staging without any
            // cross-batch caching.
            let mut throwaway = EpochDag::with_memory_budget(budget);
            evaluate_batch_epoch(
                &unique,
                &batch.epoch.mappings,
                &batch.epoch.catalog,
                &options,
                &mut throwaway,
            )
            .map(|o| (o, None))
        } else {
            evaluate_batch(
                &unique,
                &batch.epoch.mappings,
                &batch.epoch.catalog,
                &options,
            )
            .map(|o| (o, None))
        };
        let (outcome, shard_stats): (_, Option<ShardStats>) = match outcome {
            Ok(pair) => pair,
            Err(err) => {
                let err = ServiceError::from(err);
                for submissions in groups.values() {
                    for submission in submissions {
                        let _ = submission.responder.send(Err(err.clone()));
                    }
                }
                return;
            }
        };

        // Each unique answer is allocated once and shared by the cache entry and every
        // responding ticket.
        let evaluated = outcome.evaluations.len();
        let source_operators = outcome.source_operators();
        if evaluated > 0 {
            // Fold this batch's per-query operator cost into the epoch's observed average
            // (EWMA, α = ½) — the admission layer's cost unit for future requests.
            let per_query = (source_operators / evaluated as u64).max(1);
            let prev = batch.epoch.observed_cost.load(Ordering::Relaxed);
            let next = if prev == 0 {
                per_query
            } else {
                (prev + per_query).div_ceil(2)
            };
            batch.epoch.observed_cost.store(next, Ordering::Relaxed);
        }
        let (tuples_read, tuples_output, rows_shared) = (
            outcome.exec.tuples_read,
            outcome.exec.tuples_output,
            outcome.exec.rows_shared,
        );
        let exec_time = outcome.exec.exec_time;
        let shared: Vec<(EvalMetrics, Arc<ProbabilisticAnswer>)> = outcome
            .evaluations
            .into_iter()
            .map(|evaluation| (evaluation.metrics, Arc::new(evaluation.answer)))
            .collect();

        // Publish answers to the cache.
        {
            let mut cache = self.answer_cache.lock().unwrap();
            for (key, (_, answer)) in order.iter().zip(&shared) {
                cache.insert(
                    batch.epoch_id,
                    key.clone(),
                    CachedAnswer {
                        answer: Arc::clone(answer),
                        batch: batch.id,
                    },
                );
            }
        }
        // Account for the batch *before* releasing the tickets, so a client that observed its
        // response always finds the batch reflected in `metrics()` / `reports()`.
        let deduped: u64 = groups
            .values()
            .map(|submissions| submissions.len().saturating_sub(1) as u64)
            .sum();
        let latency = start.elapsed();
        let latency_percentiles =
            LatencySummary::from_samples(shared.iter().map(|(m, _)| m.total_time).collect());
        let (shards, shard_fanouts, shard_merge_time, shard_latency) = match &shard_stats {
            Some(stats) => (
                stats.shards,
                stats.fanouts,
                stats.merge_time,
                LatencySummary::from_samples(stats.shard_times.clone()),
            ),
            None => (0, 0, Duration::ZERO, LatencySummary::default()),
        };
        let report = BatchReport {
            id: batch.id,
            epoch: batch.epoch_id.raw(),
            queries: total,
            evaluated,
            served_from_cache,
            plan_hits: outcome.plan_hits,
            plan_misses: outcome.plan_misses,
            dag_nodes: outcome.dag_nodes,
            epoch_bind_hits: outcome.epoch_bind_hits,
            epoch_results_reused: outcome.epoch_results_reused,
            peak_parallelism: outcome.peak_parallelism,
            dag_workers: outcome.workers,
            source_operators,
            bytes_spilled: outcome.exec.bytes_spilled,
            spill_reloads: outcome.exec.spill_reloads,
            grace_partitions: outcome.exec.grace_partitions,
            columnar_rows: outcome.exec.columnar_rows,
            segment_bytes_raw: outcome.exec.segment_bytes_raw,
            segment_bytes_encoded: outcome.exec.segment_bytes_encoded,
            observed_nodes: outcome.observed_nodes,
            reordered_joins: outcome.reordered_joins,
            shards,
            shard_fanouts,
            shard_merge_time,
            shard_latency,
            latency,
            latency_percentiles,
        };
        {
            let mut metrics = self.metrics.lock().unwrap();
            metrics.batches += 1;
            metrics.batch_deduped += deduped;
            metrics.queries_evaluated += evaluated as u64;
            metrics.plan_cache_hits += outcome.plan_hits;
            metrics.plan_cache_misses += outcome.plan_misses;
            metrics.dag_nodes_executed += outcome.dag_nodes as u64;
            metrics.dag_operators_deduped += outcome.plan_hits;
            metrics.dag_peak_parallelism = metrics
                .dag_peak_parallelism
                .max(outcome.peak_parallelism as u64);
            metrics.epoch_bind_hits += outcome.epoch_bind_hits;
            metrics.epoch_results_reused += outcome.epoch_results_reused;
            metrics.source_operators += source_operators;
            metrics.tuples_read += tuples_read;
            metrics.tuples_output += tuples_output;
            metrics.rows_shared += rows_shared;
            metrics.bytes_spilled += report.bytes_spilled;
            metrics.spill_reloads += report.spill_reloads;
            metrics.grace_partitions += report.grace_partitions;
            metrics.columnar_rows += report.columnar_rows;
            metrics.segment_bytes_raw += report.segment_bytes_raw;
            metrics.segment_bytes_encoded += report.segment_bytes_encoded;
            metrics.observed_nodes += report.observed_nodes;
            metrics.reordered_joins += report.reordered_joins;
            if shard_stats.is_some() {
                metrics.shard_batches += 1;
            }
            metrics.shard_fanouts += report.shard_fanouts;
            metrics.shard_merge_time += report.shard_merge_time;
            metrics.batch_time += latency;
        }
        if let Some(stats) = &shard_stats {
            let mut samples = self.shard_samples.lock().unwrap();
            samples.extend(stats.shard_times.iter().copied());
            if samples.len() > RETAINED_REPORTS {
                let excess = samples.len() - RETAINED_REPORTS;
                samples.drain(..excess);
            }
        }
        {
            let mut reports = self.reports.lock().unwrap();
            reports.push(report);
            if reports.len() > RETAINED_REPORTS {
                let excess = reports.len() - RETAINED_REPORTS;
                reports.drain(..excess);
            }
        }
        // Stage latencies feed the lock-free histograms on every batch, traced or not.
        for (m, _) in &shared {
            self.stages.rewrite.record_duration(m.rewrite_time);
            self.stages.plan.record_duration(m.plan_time);
            self.stages.aggregate.record_duration(m.aggregation_time);
            self.stages.query.record_duration(m.total_time);
        }
        self.stages.execute.record_duration(exec_time);
        self.stages.batch.record_duration(latency);
        // Close the batch span and bank the finished trace before releasing the tickets, so a
        // client that observed its response can always fetch its trace.
        drop(batch_span);
        if let Some(trace) = tracer.finish() {
            let mut traces = self.traces.lock().unwrap();
            if traces.len() == RETAINED_TRACES {
                traces.pop_front();
            }
            traces.push_back(trace);
        }

        for (submission, found) in cached_hits {
            Inner::respond(
                &submission,
                found.answer,
                EvalMetrics::new("answer-cache"),
                ServedFrom::AnswerCache,
                found.batch,
            );
        }
        for (key, (eval_metrics, answer)) in order.iter().zip(&shared) {
            let mut submissions = groups.remove(key).expect("group exists").into_iter();
            let first = submissions.next().expect("non-empty group");
            Inner::respond(
                &first,
                Arc::clone(answer),
                eval_metrics.clone(),
                ServedFrom::Evaluated,
                batch.id,
            );
            for duplicate in submissions {
                Inner::respond(
                    &duplicate,
                    Arc::clone(answer),
                    eval_metrics.clone(),
                    ServedFrom::BatchDedup,
                    batch.id,
                );
            }
        }
    }
}

/// A thread-safe query service: concurrent submissions, per-epoch batching, cross-query
/// sharing, and an answer cache.  See the crate docs for the architecture.
pub struct QueryService {
    inner: Arc<Inner>,
    job_tx: Option<mpsc::Sender<Batch>>,
    workers: Vec<JoinHandle<()>>,
}

impl QueryService {
    /// Starts a service with `config.workers` worker threads.
    #[must_use]
    pub fn new(config: ServiceConfig) -> Self {
        let inner = Arc::new(Inner {
            answer_cache: Mutex::new(AnswerCache::with_capacity(config.answer_cache_capacity)),
            config,
            epoch_counter: AtomicU64::new(1),
            batch_counter: AtomicU64::new(1),
            epochs: RwLock::new(HashMap::new()),
            pending: Mutex::new(HashMap::new()),
            metrics: Mutex::new(ServiceMetrics::default()),
            reports: Mutex::new(Vec::new()),
            carryover: CardinalityStore::new(),
            shard_samples: Mutex::new(Vec::new()),
            stages: StageHistograms::default(),
            traces: Mutex::new(VecDeque::new()),
        });
        let (job_tx, job_rx) = mpsc::channel::<Batch>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let workers = (0..inner.config.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                let job_rx = Arc::clone(&job_rx);
                std::thread::Builder::new()
                    .name(format!("urm-service-worker-{i}"))
                    .spawn(move || loop {
                        let job = job_rx.lock().unwrap().recv();
                        match job {
                            Ok(batch) => inner.process_batch(batch),
                            Err(_) => break, // channel closed: shutdown
                        }
                    })
                    .expect("spawn service worker")
            })
            .collect();
        QueryService {
            inner,
            job_tx: Some(job_tx),
            workers,
        }
    }

    /// Registers an immutable (catalog, mapping set) pair, returning its epoch id.  The epoch
    /// is born with an empty persistent DAG; its first batch is the cold one.
    ///
    /// With [`ServiceConfig::memory_budget`] set, the epoch's DAG runs over a spill
    /// [`BufferPool`](urm_storage::BufferPool) of that budget (grace hash joins, spill-backed
    /// pins); without one, pinned results are resident and bounded by the byte-budgeted LRU
    /// pin policy, so alternating batch working sets keep each other warm.
    pub fn register_epoch(&self, catalog: Catalog, mappings: MappingSet) -> EpochId {
        let id = self.inner.epoch_counter.fetch_add(1, Ordering::Relaxed);
        let mut dag = match self.inner.config.memory_budget {
            Some(budget) => EpochDag::with_memory_budget(budget),
            None => EpochDag::with_pin_budget(urm_core::DEFAULT_PIN_BUDGET_BYTES),
        };
        // The pipeline path prepares batches without BatchOptions in hand, so the adaptive
        // toggle is fixed on the epoch at birth (evaluate_batch_epoch re-asserts it per call).
        dag.set_adaptive(self.inner.config.adaptive);
        // Seed the fresh DAG (and every shard DAG) with the observations retired epochs left
        // behind: a re-registered catalog's first batch starts from learned cardinalities.
        let carried = self.inner.carryover.snapshot();
        if !carried.is_empty() {
            dag.cardinalities().absorb(&carried);
        }
        let shard_set = (self.inner.config.shards > 1).then(|| {
            let set = ShardSet::new(
                &catalog,
                self.inner.config.shards,
                self.inner.config.shard_scheme,
                self.inner.config.memory_budget,
            );
            set.seed_cardinalities(&carried);
            set
        });
        self.inner.epochs.write().unwrap().insert(
            id,
            Arc::new(Epoch {
                catalog,
                mappings,
                dag: Mutex::new(dag),
                observed_cost: AtomicU64::new(0),
                shard_set,
            }),
        );
        EpochId(id)
    }

    /// Retires an epoch: new submissions against it are rejected and its catalog and mapping
    /// set are dropped once in-flight batches finish.  Returns whether the epoch existed.
    ///
    /// A long-lived service that re-matches periodically should retire superseded epochs, or
    /// every historical catalog stays resident.  Cached answers of the retired epoch remain in
    /// the answer cache until evicted by LRU pressure, but are unreachable (submissions against
    /// the retired id fail before the cache is consulted).
    pub fn drop_epoch(&self, epoch: EpochId) -> bool {
        let removed = self.inner.epochs.write().unwrap().remove(&epoch.raw());
        if let Some(retired) = &removed {
            // Persist what the epoch learned: fold its observed cardinalities (and its
            // shards', when sharded) into the service-level carry-over store, so the next
            // epoch registered over the same catalog starts warm.
            self.inner
                .carryover
                .absorb(&retired.dag.lock().unwrap().cardinalities().snapshot());
            if let Some(set) = &retired.shard_set {
                self.inner.carryover.absorb(&set.snapshot_cardinalities());
            }
        }
        let removed = removed.is_some();
        // Reject anything still pending against the retired epoch.
        if let Some(submissions) = self.inner.pending.lock().unwrap().remove(&epoch.raw()) {
            for submission in submissions {
                let _ = submission
                    .responder
                    .send(Err(ServiceError::UnknownEpoch(epoch)));
            }
        }
        removed
    }

    /// Submits a query against an epoch.
    ///
    /// Returns immediately with a [`Ticket`]; the query is answered from the answer cache when
    /// possible, otherwise it joins the epoch's pending batch, which is dispatched when it
    /// reaches [`ServiceConfig::batch_max`] or on [`flush`](QueryService::flush).
    pub fn submit(&self, epoch: EpochId, query: TargetQuery) -> ServiceResult<Ticket> {
        self.submit_traced(epoch, query, Tracer::disabled())
    }

    /// [`submit`](QueryService::submit) with a request-scoped tracer: when `tracer` is
    /// enabled, the batch this query lands in records a full span tree under its trace id
    /// (retrievable from [`finished_traces`](QueryService::finished_traces) once answered).
    /// Cache hits at submit time short-circuit before any batch runs and record no spans.
    pub fn submit_traced(
        &self,
        epoch: EpochId,
        query: TargetQuery,
        tracer: Tracer,
    ) -> ServiceResult<Ticket> {
        let epoch_arc = self
            .inner
            .epochs
            .read()
            .unwrap()
            .get(&epoch.raw())
            .cloned()
            .ok_or(ServiceError::UnknownEpoch(epoch))?;
        self.inner.metrics.lock().unwrap().queries_submitted += 1;

        let key = format!("{query:?}");
        let (tx, rx) = mpsc::channel();
        let ticket = Ticket { rx };

        if let Some(found) = self.inner.answer_cache.lock().unwrap().lookup(epoch, &key) {
            let _ = tx.send(Ok(QueryResponse {
                answer: found.answer,
                metrics: EvalMetrics::new("answer-cache"),
                served_from: ServedFrom::AnswerCache,
                batch: found.batch,
            }));
            return Ok(ticket);
        }

        let submission = Submission {
            query,
            key,
            responder: tx,
            tracer,
        };
        let ready = {
            let mut pending = self.inner.pending.lock().unwrap();
            // Re-check under the pending lock: a concurrent `drop_epoch` drains this queue
            // only while holding it, so a submission enqueued after the epoch check above
            // could otherwise be stranded (never dispatched, never rejected).
            if !self.inner.epochs.read().unwrap().contains_key(&epoch.raw()) {
                return Err(ServiceError::UnknownEpoch(epoch));
            }
            let queue = pending.entry(epoch.raw()).or_default();
            queue.push(submission);
            if queue.len() >= self.inner.config.batch_max {
                pending.remove(&epoch.raw())
            } else {
                None
            }
        };
        if let Some(submissions) = ready {
            self.dispatch(epoch, epoch_arc, submissions);
        }
        Ok(ticket)
    }

    /// Dispatches every pending submission as batches, across all epochs.
    pub fn flush(&self) {
        let drained: Vec<(u64, Vec<Submission>)> =
            self.inner.pending.lock().unwrap().drain().collect();
        for (epoch_raw, submissions) in drained {
            let epoch_arc = self.inner.epochs.read().unwrap().get(&epoch_raw).cloned();
            match epoch_arc {
                Some(epoch_arc) => self.dispatch(EpochId(epoch_raw), epoch_arc, submissions),
                None => {
                    for submission in submissions {
                        let _ = submission
                            .responder
                            .send(Err(ServiceError::UnknownEpoch(EpochId(epoch_raw))));
                    }
                }
            }
        }
    }

    fn dispatch(&self, epoch_id: EpochId, epoch: Arc<Epoch>, submissions: Vec<Submission>) {
        if submissions.is_empty() {
            return;
        }
        let batch = Batch {
            id: self.inner.batch_counter.fetch_add(1, Ordering::Relaxed),
            epoch_id,
            epoch,
            submissions,
        };
        if let Some(tx) = &self.job_tx {
            if let Err(mpsc::SendError(batch)) = tx.send(batch) {
                for submission in batch.submissions {
                    let _ = submission.responder.send(Err(ServiceError::Shutdown));
                }
            }
        }
    }

    /// Submits a whole workload, flushes, and waits for every response (in submission order).
    ///
    /// This is the synchronous convenience path used by `urm-cli` and the benchmarks;
    /// concurrent clients use [`submit`](QueryService::submit) / [`Ticket::wait`] directly.
    pub fn execute_all(
        &self,
        epoch: EpochId,
        queries: Vec<TargetQuery>,
    ) -> ServiceResult<Vec<QueryResponse>> {
        let tickets: Vec<Ticket> = queries
            .into_iter()
            .map(|q| self.submit(epoch, q))
            .collect::<ServiceResult<_>>()?;
        self.flush();
        tickets.into_iter().map(Ticket::wait).collect()
    }

    /// The epoch's observed average cost in *source operators per evaluated query* (an
    /// exponentially-decayed average over its executed batches), or `None` while the epoch is
    /// cold (or unknown).  Admission layers use this to charge a request what the epoch has
    /// actually been paying per query, falling back to a static plan-shape estimate.
    #[must_use]
    pub fn observed_query_cost(&self, epoch: EpochId) -> Option<u64> {
        let epochs = self.inner.epochs.read().unwrap();
        match epochs
            .get(&epoch.raw())?
            .observed_cost
            .load(Ordering::Relaxed)
        {
            0 => None,
            cost => Some(cost),
        }
    }

    /// The configuration this service was started with.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.inner.config
    }

    /// A snapshot of the service-wide metrics.
    #[must_use]
    pub fn metrics(&self) -> ServiceMetrics {
        let mut snapshot = self.inner.metrics.lock().unwrap().clone();
        snapshot.shard_latency =
            LatencySummary::from_samples(self.inner.shard_samples.lock().unwrap().clone());
        let cache = self.inner.answer_cache.lock().unwrap();
        snapshot.answer_cache_hits = cache.hits();
        snapshot.answer_cache_misses = cache.misses();
        snapshot.answer_cache_evictions = cache.evictions();
        snapshot
    }

    /// The retained per-batch reports (most recent last).
    #[must_use]
    pub fn reports(&self) -> Vec<BatchReport> {
        self.inner.reports.lock().unwrap().clone()
    }

    /// Snapshots of the per-stage latency histograms as `(stage, snapshot)` pairs —
    /// `rewrite`, `plan`, `execute`, `aggregate`, `query` and `batch` (log-bucketed; merge
    /// snapshots across services with [`HistSnapshot::merge`]).
    #[must_use]
    pub fn stage_histograms(&self) -> Vec<(&'static str, HistSnapshot)> {
        self.inner.stages.snapshot()
    }

    /// The retained finished traces (bounded ring, newest last).  Batches record a trace when
    /// a submission carried an enabled [`Tracer`] ([`submit_traced`](QueryService::submit_traced))
    /// or when [`ServiceConfig::trace_sample`] sampled them.
    #[must_use]
    pub fn finished_traces(&self) -> Vec<TraceReport> {
        self.inner.traces.lock().unwrap().iter().cloned().collect()
    }

    /// Flushes pending work, waits for the workers to drain, and stops them.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.flush();
        self.job_tx = None; // closing the channel stops the workers once drained
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urm_core::testkit;

    fn service() -> (QueryService, EpochId) {
        let service = QueryService::new(ServiceConfig::tiny());
        let epoch = service.register_epoch(testkit::figure2_catalog(), testkit::figure3_mappings());
        (service, epoch)
    }

    #[test]
    fn queries_differing_only_in_value_type_are_not_conflated() {
        // `Display` renders Int(123) and Text("123") identically; the cache/dedup key must
        // not, or one query would be served the other's answer.
        let (service, epoch) = service();
        let text_query = TargetQuery::builder("q")
            .relation("Person")
            .filter_eq("Person.phone", "123")
            .returning(["Person.addr"])
            .build()
            .unwrap();
        let int_query = TargetQuery::builder("q")
            .relation("Person")
            .filter_eq("Person.phone", 123i64)
            .returning(["Person.addr"])
            .build()
            .unwrap();
        let responses = service
            .execute_all(epoch, vec![text_query, int_query])
            .unwrap();
        assert_eq!(responses[0].served_from, ServedFrom::Evaluated);
        assert_eq!(
            responses[1].served_from,
            ServedFrom::Evaluated,
            "typed variant was wrongly deduplicated against the text variant"
        );
        // Figure 2's phone column is Text: the Text predicate matches, the Int one cannot.
        assert_eq!(responses[0].answer.len(), 2);
        assert_eq!(responses[1].answer.len(), 0);
    }

    #[test]
    fn dropped_epochs_reject_submissions_and_fail_pending_ones() {
        let (service, epoch) = service();
        // Warm the path once, then leave one submission pending and retire the epoch.
        service.execute_all(epoch, vec![testkit::q0()]).unwrap();
        let pending = service.submit(epoch, testkit::q1()).unwrap();
        assert!(service.drop_epoch(epoch));
        assert!(!service.drop_epoch(epoch), "second drop is a no-op");
        assert_eq!(
            pending.wait().unwrap_err(),
            ServiceError::UnknownEpoch(epoch)
        );
        // New submissions are rejected outright — even ones the answer cache could serve.
        let err = service.submit(epoch, testkit::q0()).unwrap_err();
        assert_eq!(err, ServiceError::UnknownEpoch(epoch));
    }

    #[test]
    fn unknown_epoch_is_rejected() {
        let (service, _) = service();
        let err = service
            .submit(EpochId::from_raw(999), testkit::q0())
            .unwrap_err();
        assert_eq!(err, ServiceError::UnknownEpoch(EpochId::from_raw(999)));
    }

    #[test]
    fn batch_dedup_and_answer_cache_paths() {
        let (service, epoch) = service();
        // First round: q0 twice and q1 — one batch, q0 deduplicated within it.
        let responses = service
            .execute_all(epoch, vec![testkit::q0(), testkit::q0(), testkit::q1()])
            .unwrap();
        assert_eq!(responses[0].served_from, ServedFrom::Evaluated);
        assert_eq!(responses[1].served_from, ServedFrom::BatchDedup);
        assert_eq!(responses[2].served_from, ServedFrom::Evaluated);
        assert_eq!(responses[0].answer.sorted(), responses[1].answer.sorted());

        // Second round: everything is answered from the answer cache at submit time.
        let again = service
            .execute_all(epoch, vec![testkit::q0(), testkit::q1()])
            .unwrap();
        assert!(again
            .iter()
            .all(|r| r.served_from == ServedFrom::AnswerCache));
        assert_eq!(again[0].answer.sorted(), responses[0].answer.sorted());

        let metrics = service.metrics();
        assert_eq!(metrics.queries_submitted, 5);
        assert_eq!(metrics.queries_evaluated, 2);
        assert_eq!(metrics.batch_deduped, 1);
        assert_eq!(metrics.answer_cache_hits, 2);
        assert!(metrics.answer_hit_rate() > 0.0);
    }

    #[test]
    fn epoch_dag_reuses_across_batches_of_one_epoch() {
        // q0 and q1 are different queries (so the answer cache stays out of the way) whose
        // reformulations overlap on scans/selections: the second batch must answer the shared
        // frontier from the epoch DAG instead of re-executing it.
        let (service, epoch) = service();
        service.execute_all(epoch, vec![testkit::q0()]).unwrap();
        service.execute_all(epoch, vec![testkit::q1()]).unwrap();
        let metrics = service.metrics();
        assert!(
            metrics.epoch_results_reused > 0,
            "second batch re-executed the epoch's materialised operators"
        );
        assert!(metrics.epoch_reuse_rate() > 0.0);
        let reports = service.reports();
        assert_eq!(reports[0].epoch_results_reused, 0, "first batch is cold");
        assert!(reports[1].epoch_results_reused > 0);

        // The same workload with the epoch cache off: every batch rebuilds from scratch.
        let service = QueryService::new(ServiceConfig {
            epoch_cache: false,
            ..ServiceConfig::tiny()
        });
        let epoch = service.register_epoch(testkit::figure2_catalog(), testkit::figure3_mappings());
        let a = service.execute_all(epoch, vec![testkit::q0()]).unwrap();
        let b = service.execute_all(epoch, vec![testkit::q1()]).unwrap();
        let metrics = service.metrics();
        assert_eq!(metrics.epoch_results_reused, 0);
        assert_eq!(metrics.epoch_bind_hits, 0);
        assert_eq!(metrics.epoch_reuse_rate(), 0.0);
        assert!(!a[0].answer.is_empty() || !b[0].answer.is_empty());
    }

    #[test]
    fn memory_budget_zero_answers_are_identical_to_unbudgeted() {
        let (service, epoch) = service();
        let queries = vec![testkit::q0(), testkit::q1(), testkit::q2_product()];
        let unbudgeted = service.execute_all(epoch, queries.clone()).unwrap();

        let budgeted_service = QueryService::new(ServiceConfig {
            memory_budget: Some(0),
            ..ServiceConfig::tiny()
        });
        let epoch = budgeted_service
            .register_epoch(testkit::figure2_catalog(), testkit::figure3_mappings());
        // Two rounds with a fresh answer cache miss each time would need distinct queries;
        // instead replay the same round so the second one exercises the spilled-pin path too.
        let first = budgeted_service
            .execute_all(epoch, queries.clone())
            .unwrap();
        for (a, b) in unbudgeted.iter().zip(&first) {
            assert_eq!(a.answer.sorted(), b.answer.sorted());
        }
        let metrics = budgeted_service.metrics();
        assert!(metrics.bytes_spilled > 0, "budget 0 must spill pins");
        // (The worked-example queries reformulate onto products, so the grace *join* path is
        // exercised by the engine tests and the spill benchmark, not here.)
        let reports = budgeted_service.reports();
        assert!(reports.iter().any(|r| r.bytes_spilled > 0));

        // The budget must hold with the epoch cache off too (throwaway budgeted epochs):
        // identical answers, spilling still accounted.
        let no_cache_service = QueryService::new(ServiceConfig {
            memory_budget: Some(0),
            epoch_cache: false,
            ..ServiceConfig::tiny()
        });
        let epoch = no_cache_service
            .register_epoch(testkit::figure2_catalog(), testkit::figure3_mappings());
        let again = no_cache_service.execute_all(epoch, queries).unwrap();
        for (a, b) in unbudgeted.iter().zip(&again) {
            assert_eq!(a.answer.sorted(), b.answer.sorted());
        }
        assert!(
            no_cache_service.metrics().bytes_spilled > 0,
            "memory budget silently ignored when epoch_cache is off"
        );
    }

    #[test]
    fn alternating_batches_stay_warm_under_the_pin_budget() {
        // A, B, A, B: with the byte-budgeted LRU pin policy (the default), the repeats of A
        // and B execute nothing — the ROADMAP's "pin policy tuning" scenario.  The answer
        // cache would mask this, so alternate between two queries whose *epoch work* overlaps
        // but whose cache keys differ per round... simplest: turn the answer cache off by
        // using distinct-but-shared-structure queries is overkill — instead inspect reports
        // after resubmitting the same queries, which the answer cache intercepts *before* the
        // DAG.  So assert on epoch reuse across the A and B batches instead.
        let (service, epoch) = service();
        service.execute_all(epoch, vec![testkit::q0()]).unwrap();
        service.execute_all(epoch, vec![testkit::q1()]).unwrap();
        // q0's working set was NOT rotated out by q1's batch (byte-LRU keeps both), so a
        // third, overlapping query reuses the q0 frontier even two batches later.
        service
            .execute_all(epoch, vec![testkit::q2_product()])
            .unwrap();
        let reports = service.reports();
        assert_eq!(reports.len(), 3);
        assert!(
            reports[2].epoch_results_reused > 0,
            "older batches' pins were rotated out despite fitting the byte budget"
        );
    }

    #[test]
    fn retired_epoch_observations_seed_the_next_registration() {
        // Warm an epoch (batch 1 records, batch 2 applies), retire it, re-register the *same*
        // catalog clone (bound-plan fingerprints hash the shared row buffers, so they line up)
        // and run the same query again: the fresh epoch's very first batch must already
        // schedule on observed cardinalities instead of re-learning from static estimates.
        let catalog = testkit::figure2_catalog();
        let service = QueryService::new(ServiceConfig::tiny());
        let epoch = service.register_epoch(catalog.clone(), testkit::figure3_mappings());
        service.execute_all(epoch, vec![testkit::q0()]).unwrap();
        service.execute_all(epoch, vec![testkit::q1()]).unwrap();
        assert!(service.drop_epoch(epoch));

        let fresh = service.register_epoch(catalog, testkit::figure3_mappings());
        service.execute_all(fresh, vec![testkit::q0()]).unwrap();
        let reports = service.reports();
        let cold = reports.last().unwrap();
        assert_eq!(cold.epoch, fresh.raw());
        assert!(
            cold.observed_nodes > 0,
            "carried-over cardinalities were not applied by the fresh epoch's first batch"
        );
    }

    #[test]
    fn sharded_epochs_fold_shard_observations_into_the_carryover() {
        let catalog = testkit::figure2_catalog();
        let service = QueryService::new(ServiceConfig {
            shards: 2,
            ..ServiceConfig::tiny()
        });
        let epoch = service.register_epoch(catalog.clone(), testkit::figure3_mappings());
        service
            .execute_all(epoch, vec![testkit::q0(), testkit::count_query()])
            .unwrap();
        let metrics = service.metrics();
        assert_eq!(metrics.shard_batches, 1);
        assert!(metrics.shard_fanouts > 0);
        assert!(service.drop_epoch(epoch));

        // Scatter roots bind against per-ShardSet slice buffers (rebuilt at registration, so
        // their fingerprints rotate), but singleton roots bind the shared full replicas: the
        // count query's observations must line up on the fresh epoch's very first batch.
        let fresh = service.register_epoch(catalog, testkit::figure3_mappings());
        service
            .execute_all(fresh, vec![testkit::count_query()])
            .unwrap();
        let reports = service.reports();
        let cold = reports.last().unwrap();
        assert_eq!(cold.shards, 2);
        assert!(
            cold.observed_nodes > 0,
            "shard observations did not survive retirement"
        );
    }

    #[test]
    fn full_batches_dispatch_without_flush() {
        let (service, epoch) = service();
        // tiny() has batch_max = 8: submitting 8 queries dispatches automatically.
        let tickets: Vec<Ticket> = (0..8)
            .map(|_| service.submit(epoch, testkit::q2_product()).unwrap())
            .collect();
        for ticket in tickets {
            assert!(ticket.wait().is_ok());
        }
        assert!(service.metrics().batches >= 1);
    }

    #[test]
    fn concurrent_submissions_are_all_answered() {
        let service = Arc::new(QueryService::new(ServiceConfig {
            workers: 4,
            batch_max: 4,
            ..ServiceConfig::default()
        }));
        let epoch = service.register_epoch(testkit::figure2_catalog(), testkit::figure3_mappings());
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let service = Arc::clone(&service);
                std::thread::spawn(move || {
                    let query = if i % 2 == 0 {
                        testkit::q0()
                    } else {
                        testkit::q1()
                    };
                    let tickets: Vec<Ticket> = (0..6)
                        .map(|_| service.submit(epoch, query.clone()).unwrap())
                        .collect();
                    service.flush();
                    tickets
                        .into_iter()
                        .map(|t| t.wait().unwrap().answer)
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut q0_answers = Vec::new();
        let mut q1_answers = Vec::new();
        for (i, handle) in handles.into_iter().enumerate() {
            let answers = handle.join().unwrap();
            assert_eq!(answers.len(), 6);
            if i % 2 == 0 {
                q0_answers.extend(answers);
            } else {
                q1_answers.extend(answers);
            }
        }
        // Every client saw the same answer regardless of which batch served it.
        for a in &q0_answers {
            assert_eq!(a.sorted(), q0_answers[0].sorted());
        }
        for a in &q1_answers {
            assert_eq!(a.sorted(), q1_answers[0].sorted());
        }
    }

    #[test]
    fn pipelined_and_serialised_locks_agree_under_concurrency() {
        // Same concurrent workload, pipeline on vs off: every client must see the same answer
        // either way, and the pipelined run's reports must account the same epoch reuse.
        let run = |pipeline: bool| {
            let service = Arc::new(QueryService::new(ServiceConfig {
                workers: 4,
                batch_max: 2,
                pipeline,
                ..ServiceConfig::default()
            }));
            let epoch =
                service.register_epoch(testkit::figure2_catalog(), testkit::figure3_mappings());
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let service = Arc::clone(&service);
                    std::thread::spawn(move || {
                        let query = if i % 2 == 0 {
                            testkit::q0()
                        } else {
                            testkit::q1()
                        };
                        let tickets: Vec<Ticket> = (0..4)
                            .map(|_| service.submit(epoch, query.clone()).unwrap())
                            .collect();
                        service.flush();
                        tickets
                            .into_iter()
                            .map(|t| t.wait().unwrap().answer.sorted())
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            let answers: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            (answers, service.metrics())
        };
        let (pipelined, pipelined_metrics) = run(true);
        let (serialised, _) = run(false);
        for (a, b) in pipelined.iter().zip(&serialised) {
            assert_eq!(a, b, "pipelined lock changed an answer");
        }
        assert_eq!(pipelined_metrics.queries_submitted, 16);
    }

    #[test]
    fn batch_reports_carry_latency_percentiles() {
        let (service, epoch) = service();
        service
            .execute_all(
                epoch,
                vec![testkit::q0(), testkit::q1(), testkit::q2_product()],
            )
            .unwrap();
        let reports = service.reports();
        let p = reports[0].latency_percentiles;
        assert!(p.p50 > std::time::Duration::ZERO);
        assert!(p.p50 <= p.p95 && p.p95 <= p.p99);
        assert!(p.p99 <= reports[0].latency, "a query outlived its batch");
    }

    #[test]
    fn batch_reports_account_for_the_work() {
        let (service, epoch) = service();
        service
            .execute_all(epoch, vec![testkit::q0(), testkit::q1(), testkit::q0()])
            .unwrap();
        let reports = service.reports();
        assert_eq!(reports.len(), 1);
        let report = &reports[0];
        assert_eq!(report.queries, 3);
        assert_eq!(report.evaluated, 2);
        assert!(report.plan_misses > 0);
        assert!(report.source_operators > 0);
    }
}
