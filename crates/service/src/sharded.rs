//! The scatter-gather coordinator façade.
//!
//! [`ShardedService`] is a [`QueryService`] whose epochs carry N shard runtimes: registering
//! an epoch deterministically partitions the catalog ([`urm_storage::ShardSpec`]'s hash or
//! range cut), every batch is fanned out to all shards in parallel, and the per-shard answers
//! are merged back into the canonical probability-descending order — **byte-identical** to the
//! single-node service (the property tests in `tests/prop_sharded.rs` assert this over random
//! catalogs, mapping sets and batches).
//!
//! ```text
//!                      ┌────────────────────────────┐
//!   submit ──batch──►  │  coordinator (QueryService)│
//!                      │  route roots: scatter/single│
//!                      └──┬───────┬────────┬────────┘
//!                    scatter   scatter   scatter        (parallel, scoped threads)
//!                      ┌──▼──┐  ┌──▼──┐  ┌──▼──┐
//!                      │shard│  │shard│  │shard│ …      (slice i of every table + replicas,
//!                      │  0  │  │  1  │  │  2  │         own persistent DAG + spill pool)
//!                      └──┬──┘  └──┬──┘  └──┬──┘
//!                         └──────gather─────┘           (merge, dedup, canonical order)
//! ```
//!
//! The wrapper exists for discoverability and type-level intent; everything it does is also
//! reachable by setting [`ServiceConfig::shards`] directly on a [`QueryService`].

use crate::config::ServiceConfig;
use crate::service::QueryService;
use std::ops::Deref;
use urm_storage::ShardScheme;

/// A [`QueryService`] running the scatter-gather shard path: batches fan out to `shards`
/// partitioned runtimes and merge back byte-identically to the single-node service.
///
/// Dereferences to [`QueryService`], so `register_epoch` / `submit` / `execute_all` /
/// `metrics` are used exactly as on the unsharded service.
pub struct ShardedService {
    service: QueryService,
    shards: usize,
    scheme: ShardScheme,
}

impl ShardedService {
    /// Starts a sharded service: `config` with [`ServiceConfig::shards`] /
    /// [`shard_scheme`](ServiceConfig::shard_scheme) overridden to `shards` / `scheme`.
    ///
    /// `shards` is clamped to at least 1 (1 behaves exactly like an unsharded
    /// [`QueryService`]).  A per-epoch [`ServiceConfig::memory_budget`] applies **per shard**.
    #[must_use]
    pub fn new(config: ServiceConfig, shards: usize, scheme: ShardScheme) -> Self {
        let shards = shards.max(1);
        let service = QueryService::new(ServiceConfig {
            shards,
            shard_scheme: scheme,
            ..config
        });
        ShardedService {
            service,
            shards,
            scheme,
        }
    }

    /// Number of shards every epoch of this service is partitioned into.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The partitioning scheme epochs are cut with.
    #[must_use]
    pub fn scheme(&self) -> ShardScheme {
        self.scheme
    }

    /// Consumes the façade, returning the underlying service (for APIs wanting ownership).
    #[must_use]
    pub fn into_inner(self) -> QueryService {
        self.service
    }
}

impl Deref for ShardedService {
    type Target = QueryService;

    fn deref(&self) -> &QueryService {
        &self.service
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urm_core::testkit;

    #[test]
    fn sharded_service_answers_match_the_single_node_service() {
        let single = QueryService::new(ServiceConfig::tiny());
        let epoch = single.register_epoch(testkit::figure2_catalog(), testkit::figure3_mappings());
        let queries = vec![testkit::q0(), testkit::q1(), testkit::q2_product()];
        let expected = single.execute_all(epoch, queries.clone()).unwrap();

        for scheme in [ShardScheme::Hash, ShardScheme::Range] {
            let sharded = ShardedService::new(ServiceConfig::tiny(), 3, scheme);
            assert_eq!(sharded.shards(), 3);
            assert_eq!(sharded.scheme(), scheme);
            let epoch =
                sharded.register_epoch(testkit::figure2_catalog(), testkit::figure3_mappings());
            let responses = sharded.execute_all(epoch, queries.clone()).unwrap();
            for (a, b) in expected.iter().zip(&responses) {
                assert_eq!(a.answer.sorted(), b.answer.sorted());
            }
            let metrics = sharded.metrics();
            assert_eq!(metrics.shard_batches, 1);
            assert!(metrics.shard_fanouts > 0, "no roots were fanned out");
        }
    }

    #[test]
    fn one_shard_degenerates_to_the_unsharded_path() {
        let sharded = ShardedService::new(ServiceConfig::tiny(), 0, ShardScheme::Hash);
        assert_eq!(sharded.shards(), 1, "shard count clamps to 1");
        let epoch = sharded.register_epoch(testkit::figure2_catalog(), testkit::figure3_mappings());
        let responses = sharded.execute_all(epoch, vec![testkit::q0()]).unwrap();
        assert_eq!(responses[0].answer.len(), 2);
        // shards == 1 takes the classic branch: no shard accounting at all.
        assert_eq!(sharded.metrics().shard_batches, 0);
        assert_eq!(sharded.reports()[0].shards, 0);
    }
}
