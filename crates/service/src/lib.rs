//! # urm-service
//!
//! A concurrent batch query-serving subsystem for the URM workspace.
//!
//! The paper's central claim is that evaluating *many* probabilistic queries over an uncertain
//! matching is cheap when computation is shared — yet one-shot
//! [`evaluate`](urm_core::evaluate) calls never amortise that sharing across independent
//! callers.  This crate adds the serving layer that does:
//!
//! * [`QueryService`] accepts [`TargetQuery`](urm_core::TargetQuery) submissions from many
//!   concurrent clients and groups them into **batches** per registered *epoch* — an immutable
//!   (catalog, mapping set) pair identified by an [`EpochId`];
//! * each batch is lowered onto **one merged shared-operator DAG**
//!   ([`urm_engine::dag`](urm_engine::dag)): the bound plans of every query in the batch are
//!   deduplicated by fingerprint, every distinct operator executes exactly once, and the
//!   [`DagScheduler`](urm_engine::DagScheduler) runs independent ready nodes on
//!   [`ServiceConfig::dag_workers`] scoped threads (intra-batch parallelism);
//! * batches run on a fixed **worker pool**, so independent batches (and epochs) evaluate in
//!   parallel while each batch stays deterministic;
//! * a bounded **answer cache** keyed by the query's canonical rendering + epoch lets repeated
//!   queries skip evaluation entirely — within a batch, duplicate submissions are deduplicated
//!   before evaluation;
//! * with [`ServiceConfig::shards`] > 1 (or the [`ShardedService`] façade), each registered
//!   epoch's catalog is deterministically partitioned across N **shard runtimes** and every
//!   batch is fanned out to all shards in parallel, the per-shard answers merged back into the
//!   canonical order — byte-identical to the single-node service.
//!
//! Answers are identical to sequential evaluation (the integration tests compare against
//! `Algorithm::OSharing(Strategy::Sef)` tuple-for-tuple); only the work accounting differs.
//!
//! ```
//! use urm_core::testkit;
//! use urm_service::{QueryService, ServiceConfig};
//!
//! let service = QueryService::new(ServiceConfig::default());
//! let epoch = service.register_epoch(testkit::figure2_catalog(), testkit::figure3_mappings());
//!
//! let responses = service
//!     .execute_all(epoch, vec![testkit::q0(), testkit::q1(), testkit::q0()])
//!     .unwrap();
//! assert_eq!(responses.len(), 3);
//! // The duplicate q0 was answered without re-evaluation.
//! assert_eq!(responses[0].answer.sorted(), responses[2].answer.sorted());
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod answer_cache;
pub mod config;
pub mod metrics;
pub mod service;
pub mod sharded;

pub use answer_cache::AnswerCache;
pub use config::ServiceConfig;
pub use metrics::{percentile, BatchReport, LatencySummary, ServiceMetrics};
pub use service::{
    EpochId, QueryResponse, QueryService, ServedFrom, ServiceError, ServiceResult, Ticket,
};
pub use sharded::ShardedService;
// Observability primitives, re-exported so the server/CLI/bench layers need no direct
// `urm-obs` edge for the common cases (tracing a request, scraping histograms).
pub use urm_obs::{
    merge_chrome_json, HistSnapshot, Histogram, MetricKind, PromWriter, TraceReport, Tracer,
};
