//! Service-level work accounting.

use std::time::Duration;
// The percentile machinery (nearest-rank `percentile`, `LatencySummary`) lives in `urm-obs`
// now — one implementation shared by the service, the CLI, the benches and the server.  The
// re-export keeps `urm_service::{percentile, LatencySummary}` working unchanged.
use urm_obs::MetricKind;
pub use urm_obs::{percentile, LatencySummary};

/// A snapshot of the service-wide counters.
#[derive(Debug, Clone, Default)]
pub struct ServiceMetrics {
    /// Queries submitted (including ones answered from the cache).
    pub queries_submitted: u64,
    /// Queries answered straight from the answer cache at submit time.
    pub answer_cache_hits: u64,
    /// Queries that missed the answer cache at submit time.
    pub answer_cache_misses: u64,
    /// Answers evicted from the answer cache.
    pub answer_cache_evictions: u64,
    /// Duplicate submissions answered by another query of the same batch.
    pub batch_deduped: u64,
    /// Batches executed.
    pub batches: u64,
    /// Queries evaluated (after caching and deduplication).
    pub queries_evaluated: u64,
    /// Bound-operator insertions the batch DAGs answered with an existing node (cross-query
    /// sub-plan sharing) across all batches.
    pub plan_cache_hits: u64,
    /// Distinct bound operators materialised (one DAG node each) across all batches.
    pub plan_cache_misses: u64,
    /// Distinct DAG nodes executed across all batches (each exactly once within its batch).
    pub dag_nodes_executed: u64,
    /// Operator insertions deduplicated by the batch DAGs (same counter as `plan_cache_hits`,
    /// kept under the DAG's name for dashboards that track node-dedup explicitly).
    pub dag_operators_deduped: u64,
    /// Highest number of DAG nodes observed in flight at once in any batch.
    pub dag_peak_parallelism: u64,
    /// Source-query submissions answered by an epoch DAG's bind cache — plan optimisation,
    /// binding and DAG merging skipped (cross-batch reuse within an epoch).
    pub epoch_bind_hits: u64,
    /// DAG nodes answered by a still-materialised result of an earlier batch of the same epoch
    /// — node executions skipped, whole subgraphs pruned.
    pub epoch_results_reused: u64,
    /// Source operators executed across all batches.
    pub source_operators: u64,
    /// Tuples read by operators across all batches.
    pub tuples_read: u64,
    /// Tuples produced by operators across all batches.
    pub tuples_output: u64,
    /// Rows handed to operators as shared views instead of copies (the physical executor's
    /// clone-elimination counter, summed across all batches).
    pub rows_shared: u64,
    /// Bytes of materialised relations written to spill segments under the epochs' memory
    /// budgets (0 when [`ServiceConfig::memory_budget`](crate::ServiceConfig) is off).
    pub bytes_spilled: u64,
    /// Spilled relations transparently reloaded from their segments.
    pub spill_reloads: u64,
    /// Partitions produced by grace hash joins (joins whose build side exceeded the budget).
    pub grace_partitions: u64,
    /// Rows produced by the vectorized columnar kernels (0 with
    /// [`ServiceConfig::columnar`](crate::ServiceConfig) off — `urm-cli --columnar off`).
    pub columnar_rows: u64,
    /// Row-codec-equivalent bytes of the relations written to spill segments — the size the
    /// segments *would* have under the uncompressed row codec (0 without a memory budget).
    pub segment_bytes_raw: u64,
    /// Actual encoded bytes of the spill segments written (per-column dictionary / delta /
    /// run-length encodings); compare against `segment_bytes_raw` for the compression ratio.
    pub segment_bytes_encoded: u64,
    /// DAG nodes scheduled on an *observed* cardinality instead of the static estimate, summed
    /// across all batches (0 with [`ServiceConfig::adaptive`](crate::ServiceConfig) off, or
    /// while every epoch is still cold).
    pub observed_nodes: u64,
    /// Hash joins whose build side was flipped by observed-cardinality feedback, summed across
    /// all batches.
    pub reordered_joins: u64,
    /// Batches executed through the scatter-gather shard path (0 with
    /// [`ServiceConfig::shards`](crate::ServiceConfig) = 1).
    pub shard_batches: u64,
    /// Per-shard root submissions fanned out by sharded batches (a root scattered to all N
    /// shards counts N; a singleton root routed to one shard counts 1).
    pub shard_fanouts: u64,
    /// Total wall-clock time sharded batches spent gathering and merging per-shard answers
    /// back into the canonical order.
    pub shard_merge_time: Duration,
    /// p50/p95/p99 over the *per-shard* execution times of all sharded batches (each shard of
    /// each batch contributes one sample; zeros when unsharded).
    pub shard_latency: LatencySummary,
    /// Total wall-clock time spent executing batches.
    pub batch_time: Duration,
}

impl ServiceMetrics {
    /// Fraction of submissions answered from the answer cache (0 when nothing was submitted).
    #[must_use]
    pub fn answer_hit_rate(&self) -> f64 {
        let total = self.answer_cache_hits + self.answer_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.answer_cache_hits as f64 / total as f64
        }
    }

    /// Fraction of sub-plan lookups shared across the batches (0 when nothing executed).
    #[must_use]
    pub fn plan_hit_rate(&self) -> f64 {
        let total = self.plan_cache_hits + self.plan_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.plan_cache_hits as f64 / total as f64
        }
    }

    /// Fraction of needed DAG nodes answered by a previous batch of the same epoch instead of
    /// executing (0 when nothing executed, or when the epoch cache is off).
    #[must_use]
    pub fn epoch_reuse_rate(&self) -> f64 {
        let total = self.epoch_results_reused + self.dag_nodes_executed;
        if total == 0 {
            0.0
        } else {
            self.epoch_results_reused as f64 / total as f64
        }
    }

    /// Executor throughput in tuples (read + produced) per second of batch wall-clock time
    /// (0 before any batch ran).
    #[must_use]
    pub fn rows_per_second(&self) -> f64 {
        let secs = self.batch_time.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            (self.tuples_read + self.tuples_output) as f64 / secs
        }
    }

    /// Every field of the snapshot as `(name, kind, value)` triples — the **single** canonical
    /// enumeration that drives the Prometheus exposition (`GET /metrics`), the JSON snapshot
    /// (`GET /metrics.json`) and the coverage integration test, so the three surfaces cannot
    /// drift apart.  Durations are normalised to integer-nanosecond `*_ns` fields; derived
    /// rates come last, as gauges.
    #[must_use]
    pub fn fields(&self) -> Vec<(&'static str, MetricKind, f64)> {
        use MetricKind::{Counter, Gauge};
        vec![
            ("queries_submitted", Counter, self.queries_submitted as f64),
            ("answer_cache_hits", Counter, self.answer_cache_hits as f64),
            (
                "answer_cache_misses",
                Counter,
                self.answer_cache_misses as f64,
            ),
            (
                "answer_cache_evictions",
                Counter,
                self.answer_cache_evictions as f64,
            ),
            ("batch_deduped", Counter, self.batch_deduped as f64),
            ("batches", Counter, self.batches as f64),
            ("queries_evaluated", Counter, self.queries_evaluated as f64),
            ("plan_cache_hits", Counter, self.plan_cache_hits as f64),
            ("plan_cache_misses", Counter, self.plan_cache_misses as f64),
            (
                "dag_nodes_executed",
                Counter,
                self.dag_nodes_executed as f64,
            ),
            (
                "dag_operators_deduped",
                Counter,
                self.dag_operators_deduped as f64,
            ),
            (
                "dag_peak_parallelism",
                Gauge,
                self.dag_peak_parallelism as f64,
            ),
            ("epoch_bind_hits", Counter, self.epoch_bind_hits as f64),
            (
                "epoch_results_reused",
                Counter,
                self.epoch_results_reused as f64,
            ),
            ("source_operators", Counter, self.source_operators as f64),
            ("tuples_read", Counter, self.tuples_read as f64),
            ("tuples_output", Counter, self.tuples_output as f64),
            ("rows_shared", Counter, self.rows_shared as f64),
            ("bytes_spilled", Counter, self.bytes_spilled as f64),
            ("spill_reloads", Counter, self.spill_reloads as f64),
            ("grace_partitions", Counter, self.grace_partitions as f64),
            ("columnar_rows", Counter, self.columnar_rows as f64),
            ("segment_bytes_raw", Counter, self.segment_bytes_raw as f64),
            (
                "segment_bytes_encoded",
                Counter,
                self.segment_bytes_encoded as f64,
            ),
            ("observed_nodes", Counter, self.observed_nodes as f64),
            ("reordered_joins", Counter, self.reordered_joins as f64),
            ("shard_batches", Counter, self.shard_batches as f64),
            ("shard_fanouts", Counter, self.shard_fanouts as f64),
            (
                "shard_merge_time_ns",
                Counter,
                self.shard_merge_time.as_nanos() as f64,
            ),
            (
                "shard_latency_p50_ns",
                Gauge,
                self.shard_latency.p50.as_nanos() as f64,
            ),
            (
                "shard_latency_p95_ns",
                Gauge,
                self.shard_latency.p95.as_nanos() as f64,
            ),
            (
                "shard_latency_p99_ns",
                Gauge,
                self.shard_latency.p99.as_nanos() as f64,
            ),
            ("batch_time_ns", Counter, self.batch_time.as_nanos() as f64),
            ("answer_hit_rate", Gauge, self.answer_hit_rate()),
            ("plan_hit_rate", Gauge, self.plan_hit_rate()),
            ("epoch_reuse_rate", Gauge, self.epoch_reuse_rate()),
            ("rows_per_second", Gauge, self.rows_per_second()),
        ]
    }
}

/// Per-batch accounting, retained (bounded) for inspection by clients such as `urm-cli`.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Monotonic batch id (1-based).
    pub id: u64,
    /// The epoch the batch ran against.
    pub epoch: u64,
    /// Submissions in the batch.
    pub queries: usize,
    /// Distinct queries actually evaluated (after in-batch dedup and cache re-checks).
    pub evaluated: usize,
    /// Submissions answered from the answer cache while the batch was being assembled.
    pub served_from_cache: usize,
    /// Operator insertions the batch DAG answered with an existing node (sub-plan sharing).
    pub plan_hits: u64,
    /// Distinct bound operators of the batch DAG (each executed exactly once).
    pub plan_misses: u64,
    /// Distinct DAG nodes executed by this batch (for a cold batch this equals `plan_misses`;
    /// a warm batch on a hot epoch can execute none at all).
    pub dag_nodes: usize,
    /// Source-query submissions this batch answered from the epoch's bind cache.
    pub epoch_bind_hits: u64,
    /// DAG nodes this batch answered from a previous batch's still-materialised results.
    pub epoch_results_reused: u64,
    /// Maximum number of DAG nodes in flight at once while this batch executed.
    pub peak_parallelism: usize,
    /// Worker threads the batch DAG was scheduled on.
    pub dag_workers: usize,
    /// Source operators executed by this batch.
    pub source_operators: u64,
    /// Bytes this batch spilled to disk segments (0 without a memory budget).
    pub bytes_spilled: u64,
    /// Spilled relations this batch reloaded from disk.
    pub spill_reloads: u64,
    /// Grace-hash-join partitions this batch produced.
    pub grace_partitions: u64,
    /// Rows this batch's vectorized columnar kernels produced.
    pub columnar_rows: u64,
    /// Row-codec-equivalent bytes of the relations this batch spilled.
    pub segment_bytes_raw: u64,
    /// Actual encoded bytes of the spill segments this batch wrote.
    pub segment_bytes_encoded: u64,
    /// DAG nodes this batch scheduled on an observed cardinality instead of the static
    /// estimate (0 with the adaptive loop off or on a cold epoch).
    pub observed_nodes: u64,
    /// Hash joins this batch flipped to the smaller observed build side.
    pub reordered_joins: u64,
    /// Shards the batch was fanned out to (0 = the single-node path; sharded batches report
    /// the epoch's shard count even when every root was routed to one shard).
    pub shards: usize,
    /// Per-shard root submissions this batch fanned out (0 on the single-node path).
    pub shard_fanouts: u64,
    /// Wall-clock time this batch spent merging per-shard answers (zero unsharded).
    pub shard_merge_time: Duration,
    /// p50/p95/p99 over this batch's per-shard execution times (zeros unsharded).
    pub shard_latency: LatencySummary,
    /// Wall-clock latency of the batch.
    pub latency: Duration,
    /// p50/p95/p99 over the *per-query* wall-clock latencies of the batch's evaluated queries
    /// (submission to aggregation, recorded batch-side).  Zeros when the batch evaluated
    /// nothing (everything answered from the cache).
    pub latency_percentiles: LatencySummary,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rates_handle_zero_totals() {
        let m = ServiceMetrics::default();
        assert_eq!(m.answer_hit_rate(), 0.0);
        assert_eq!(m.plan_hit_rate(), 0.0);
    }

    #[test]
    fn zero_duration_windows_report_zero_throughput() {
        // A sub-millisecond smoke run can legitimately observe `batch_time == 0` (and tuples
        // processed > 0): the division must degrade to 0.0, never inf/NaN in a JSON report.
        let m = ServiceMetrics {
            tuples_read: 1000,
            tuples_output: 500,
            batch_time: Duration::ZERO,
            ..ServiceMetrics::default()
        };
        assert_eq!(m.rows_per_second(), 0.0);
        let m = ServiceMetrics {
            batch_time: Duration::from_secs(2),
            ..m
        };
        assert_eq!(m.rows_per_second(), 750.0);
    }

    #[test]
    fn fields_enumerate_every_surface_key_once() {
        // The canonical enumeration backs /metrics, /metrics.json and the coverage test:
        // names must be unique, and the duration fields must surface as integer *_ns values.
        let m = ServiceMetrics {
            batches: 3,
            batch_time: Duration::from_micros(1500),
            shard_merge_time: Duration::from_nanos(42),
            ..ServiceMetrics::default()
        };
        let fields = m.fields();
        let mut names: Vec<&str> = fields.iter().map(|(n, _, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), fields.len(), "duplicate field name");
        let get = |name: &str| {
            fields
                .iter()
                .find(|(n, _, _)| *n == name)
                .unwrap_or_else(|| panic!("missing field {name}"))
        };
        assert_eq!(get("batches").2, 3.0);
        assert_eq!(get("batch_time_ns").2, 1_500_000.0);
        assert_eq!(get("shard_merge_time_ns").2, 42.0);
        assert!(matches!(get("queries_submitted").1, MetricKind::Counter));
        assert!(matches!(get("answer_hit_rate").1, MetricKind::Gauge));
        assert!(
            !fields.iter().any(|(n, _, _)| n.ends_with("_ms")),
            "durations must be normalised to _ns"
        );
    }

    #[test]
    fn hit_rates_divide() {
        let m = ServiceMetrics {
            answer_cache_hits: 3,
            answer_cache_misses: 1,
            plan_cache_hits: 1,
            plan_cache_misses: 3,
            epoch_results_reused: 6,
            dag_nodes_executed: 2,
            ..ServiceMetrics::default()
        };
        assert!((m.answer_hit_rate() - 0.75).abs() < 1e-12);
        assert!((m.plan_hit_rate() - 0.25).abs() < 1e-12);
        assert!((m.epoch_reuse_rate() - 0.75).abs() < 1e-12);
    }
}
