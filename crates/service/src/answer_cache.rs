//! The bounded answer cache: completed probabilistic answers keyed by the query's canonical
//! rendering.

use crate::service::EpochId;
use std::sync::Arc;
use urm_core::ProbabilisticAnswer;
use urm_mqo::LruCache;

/// A cached answer plus the batch that produced it.
#[derive(Debug, Clone)]
pub struct CachedAnswer {
    /// The complete probabilistic answer (shared, so a cache hit is a pointer bump rather
    /// than a deep copy made while holding the cache lock).
    pub answer: Arc<ProbabilisticAnswer>,
    /// The batch in which the answer was evaluated.
    pub batch: u64,
}

/// A bounded LRU cache of completed answers, keyed by `(epoch, canonical query)`.
///
/// The key is the query's canonical `Debug` rendering — exact and injective (unlike `Display`,
/// which erases value type tags), so two different queries can never collide — rather than a
/// hash of it.  Epochs are immutable — a
/// registered (catalog, mapping set) pair never changes, and new data or mapping versions get a
/// fresh [`EpochId`] — so a cached answer can never go stale: it is correct for as long as its
/// epoch is addressable.
#[derive(Debug)]
pub struct AnswerCache {
    entries: LruCache<(u64, String), CachedAnswer>,
    hits: u64,
    misses: u64,
}

impl AnswerCache {
    /// A cache holding at most `capacity` answers.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        AnswerCache {
            entries: LruCache::with_capacity(capacity),
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up the answer for canonical query `key` under `epoch`, counting a hit or miss.
    pub fn lookup(&mut self, epoch: EpochId, key: &str) -> Option<CachedAnswer> {
        let found = self.entries.get(&(epoch.raw(), key.to_string())).cloned();
        match found {
            Some(found) => {
                self.hits += 1;
                Some(found)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Like [`lookup`](AnswerCache::lookup) but does not count a miss — used for the batch-time
    /// re-check of submissions that already recorded their miss at submit time (a hit is still
    /// counted: the query really was served from the cache).
    pub fn recheck(&mut self, epoch: EpochId, key: &str) -> Option<CachedAnswer> {
        let found = self.entries.get(&(epoch.raw(), key.to_string())).cloned();
        if found.is_some() {
            self.hits += 1;
        }
        found
    }

    /// Inserts a freshly evaluated answer.
    pub fn insert(&mut self, epoch: EpochId, key: String, answer: CachedAnswer) {
        self.entries.insert((epoch.raw(), key), answer);
    }

    /// Number of lookups answered from the cache.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of lookups that missed.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of cached answers evicted to stay within capacity.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.entries.evictions()
    }

    /// Number of resident answers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urm_storage::{Tuple, Value};

    fn answer(p: f64) -> CachedAnswer {
        let mut a = ProbabilisticAnswer::new();
        a.add(Tuple::new(vec![Value::from("x")]), p);
        CachedAnswer {
            answer: Arc::new(a),
            batch: 1,
        }
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut cache = AnswerCache::with_capacity(4);
        let epoch = EpochId::from_raw(1);
        assert!(cache.lookup(epoch, "q0").is_none());
        cache.insert(epoch, "q0".to_string(), answer(0.5));
        let hit = cache.lookup(epoch, "q0").unwrap();
        assert!((hit.answer.max_probability() - 0.5).abs() < 1e-12);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn recheck_counts_hits_but_not_misses() {
        let mut cache = AnswerCache::with_capacity(4);
        let epoch = EpochId::from_raw(1);
        assert!(cache.recheck(epoch, "q0").is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
        cache.insert(epoch, "q0".to_string(), answer(0.5));
        assert!(cache.recheck(epoch, "q0").is_some());
        assert_eq!((cache.hits(), cache.misses()), (1, 0));
    }

    #[test]
    fn epochs_do_not_collide() {
        let mut cache = AnswerCache::with_capacity(4);
        cache.insert(EpochId::from_raw(1), "q0".to_string(), answer(0.5));
        assert!(cache.lookup(EpochId::from_raw(2), "q0").is_none());
    }

    #[test]
    fn distinct_queries_never_collide() {
        let mut cache = AnswerCache::with_capacity(4);
        let epoch = EpochId::from_raw(1);
        cache.insert(epoch, "q0: π[a] (R)".to_string(), answer(0.5));
        assert!(cache.lookup(epoch, "q1: π[b] (R)").is_none());
        assert!(cache.lookup(epoch, "q0: π[a] (R)").is_some());
    }

    #[test]
    fn capacity_bounds_resident_answers() {
        let mut cache = AnswerCache::with_capacity(2);
        let epoch = EpochId::from_raw(1);
        for i in 0..5 {
            cache.insert(epoch, format!("q{i}"), answer(0.1));
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 3);
    }
}
