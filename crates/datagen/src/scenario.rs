//! End-to-end experiment scenarios: source instance + target schema + possible mappings.

use crate::similarity::{score_schemas, DEFAULT_THRESHOLD};
use crate::source::{generate_source, source_schema_def};
use crate::targets;
use serde::{Deserialize, Serialize};
use urm_core::CoreResult;
use urm_matching::{MappingSet, SchemaDef};
use urm_storage::Catalog;

/// Which of the paper's three target schemas to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TargetSchemaKind {
    /// The Excel purchase-order schema (48 attributes) — the paper's default.
    Excel,
    /// The Noris schema (66 attributes).
    Noris,
    /// The Paragon schema (69 attributes).
    Paragon,
}

impl TargetSchemaKind {
    /// The schema definition for this kind.
    #[must_use]
    pub fn schema(self) -> SchemaDef {
        match self {
            TargetSchemaKind::Excel => targets::excel(),
            TargetSchemaKind::Noris => targets::noris(),
            TargetSchemaKind::Paragon => targets::paragon(),
        }
    }

    /// All three kinds.
    #[must_use]
    pub fn all() -> [TargetSchemaKind; 3] {
        [
            TargetSchemaKind::Excel,
            TargetSchemaKind::Noris,
            TargetSchemaKind::Paragon,
        ]
    }
}

impl std::fmt::Display for TargetSchemaKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TargetSchemaKind::Excel => f.write_str("Excel"),
            TargetSchemaKind::Noris => f.write_str("Noris"),
            TargetSchemaKind::Paragon => f.write_str("Paragon"),
        }
    }
}

/// Parameters of a generated scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Target schema to match against.
    pub target: TargetSchemaKind,
    /// Scale factor of the source instance (see [`generate_source`]).
    pub scale: usize,
    /// Number of possible mappings `h` to generate.
    pub mappings: usize,
    /// Seed for the data generator.
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            target: TargetSchemaKind::Excel,
            scale: 100,
            mappings: 50,
            seed: 42,
        }
    }
}

/// A complete experiment scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The configuration it was generated from.
    pub config: ScenarioConfig,
    /// The source instance `D`.
    pub catalog: Catalog,
    /// The matcher-facing source schema description.
    pub source_def: SchemaDef,
    /// The target schema description.
    pub target_def: SchemaDef,
    /// The `h` possible mappings with normalised probabilities.
    pub mappings: MappingSet,
}

impl Scenario {
    /// Generates a scenario: source data, similarity scores and the top-h mapping set.
    pub fn generate(config: &ScenarioConfig) -> CoreResult<Self> {
        let source_def = source_schema_def();
        let target_def = config.target.schema();
        let catalog = generate_source(config.scale, config.seed);
        let sim = score_schemas(&source_def, &target_def, DEFAULT_THRESHOLD)?;
        let mappings = MappingSet::top_h(&sim, config.mappings.max(1))?;
        Ok(Scenario {
            config: *config,
            catalog,
            source_def,
            target_def,
            mappings,
        })
    }

    /// A copy of the scenario restricted to the first `h` mappings (renormalised); used by the
    /// "number of mappings" sweeps without regenerating data.
    #[must_use]
    pub fn with_mappings(&self, h: usize) -> Scenario {
        Scenario {
            config: ScenarioConfig {
                mappings: h,
                ..self.config
            },
            catalog: self.catalog.clone(),
            source_def: self.source_def.clone(),
            target_def: self.target_def.clone(),
            mappings: self.mappings.truncated(h.max(1)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(target: TargetSchemaKind, h: usize) -> Scenario {
        Scenario::generate(&ScenarioConfig {
            target,
            scale: 20,
            mappings: h,
            seed: 3,
        })
        .unwrap()
    }

    #[test]
    fn generates_requested_number_of_mappings() {
        let s = small(TargetSchemaKind::Excel, 10);
        assert_eq!(s.mappings.len(), 10);
        s.mappings.validate().unwrap();
        assert_eq!(s.catalog.len(), 8);
    }

    #[test]
    fn mappings_overlap_like_the_paper_reports() {
        // Figure 9(a): o-ratio between 68% and 79% on the real schemas.  Our synthetic matcher
        // should land in the same ballpark (well above 0.5).
        let s = small(TargetSchemaKind::Excel, 20);
        let o = s.mappings.o_ratio();
        assert!(o > 0.5, "o-ratio {o}");
    }

    #[test]
    fn all_three_target_schemas_work() {
        for kind in TargetSchemaKind::all() {
            let s = small(kind, 5);
            assert_eq!(s.target_def.name(), kind.to_string());
            assert_eq!(s.mappings.len(), 5);
        }
    }

    #[test]
    fn with_mappings_truncates_and_renormalises() {
        let s = small(TargetSchemaKind::Excel, 12);
        let t = s.with_mappings(4);
        assert_eq!(t.mappings.len(), 4);
        assert!((t.mappings.probability_sum() - 1.0).abs() < 1e-9);
        // Catalog shared unchanged.
        assert_eq!(t.catalog.total_tuples(), s.catalog.total_tuples());
    }

    #[test]
    fn default_config_is_reasonable() {
        let c = ScenarioConfig::default();
        assert_eq!(c.target, TargetSchemaKind::Excel);
        assert!(c.scale > 0 && c.mappings > 0);
    }
}
