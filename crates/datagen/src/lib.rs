//! # urm-datagen
//!
//! Synthetic schemas, data, similarity scores and the paper's workload for the URM
//! reproduction of *Evaluating Probabilistic Queries over Uncertain Matching* (ICDE 2012).
//!
//! The paper's experiments use a 100 MB TPC-H instance as the source database, three
//! purchase-order target schemas exported from COMA++ (Excel, Noris and Paragon, with 48, 66
//! and 69 attributes), COMA++ similarity scores, 100–500 possible mappings produced by a
//! bipartite matcher, and ten target queries (Table III).  None of those artefacts ship with
//! the paper, so this crate rebuilds equivalents:
//!
//! * [`source`] — a TPC-H-flavoured purchase-order **source schema** (8 relations, 46
//!   attributes) and a seeded, scale-parameterised data generator that plants the constant
//!   values the workload queries select on;
//! * [`targets`] — the **Excel / Noris / Paragon** target schemas with the paper's attribute
//!   counts;
//! * [`similarity`] — a deterministic attribute-name similarity scorer (token + trigram, with a
//!   synonym table) standing in for COMA++;
//! * [`scenario`] — glue that generates a complete experiment scenario (catalog + top-h mapping
//!   set) from a small config;
//! * [`workload`] — the ten queries of Table III plus the selection-count and product-count
//!   sweeps of Figures 11(d)/(e);
//! * [`replay`] — replayable workload files (and synthetic workloads) for the serving layer;
//! * [`openloop`] — precomputed Poisson arrival schedules (client mixes, warm/cold phases)
//!   for the open-loop HTTP latency harness.
//!
//! ```
//! use urm_datagen::scenario::{Scenario, ScenarioConfig, TargetSchemaKind};
//! use urm_datagen::workload;
//!
//! let scenario = Scenario::generate(&ScenarioConfig {
//!     target: TargetSchemaKind::Excel,
//!     scale: 30,
//!     mappings: 8,
//!     seed: 7,
//! })
//! .unwrap();
//! assert_eq!(scenario.mappings.len(), 8);
//! let q1 = workload::query(workload::QueryId::Q1);
//! assert_eq!(q1.name(), "Q1");
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod openloop;
pub mod replay;
pub mod scenario;
pub mod shard;
pub mod similarity;
pub mod source;
pub mod targets;
pub mod workload;

pub use openloop::{schedule, Arrival, OpenLoopConfig, PhaseSpec};
pub use replay::{parse_workload, synthetic_workload, WorkloadEntry};
pub use scenario::{Scenario, ScenarioConfig, TargetSchemaKind};
pub use shard::{merge_catalog, partition_catalog, shard_catalog, sharded_source};
