//! Open-loop workload schedules: Poisson arrivals, client mixes, warm/cold phases.
//!
//! A *closed-loop* client (send, wait, send again) hides server slowdowns: when the server
//! stalls, the client stops offering load, and measured latency stays flattering.  The latency
//! harness therefore drives the HTTP front door **open-loop**: arrival times are drawn from a
//! Poisson process *ahead of time* and requests are sent at those instants no matter how the
//! previous ones are doing — exactly how independent external clients behave.
//!
//! A schedule is fully precomputed and deterministic ([`schedule`] is a pure function of its
//! seeded config): the same config replayed twice — or replayed over HTTP and in-process —
//! issues the *same* requests at the *same* offsets from the same simulated clients, which is
//! what makes A/B comparisons and the byte-identity check of `http_bench` meaningful.
//!
//! Phases model warm/cold behaviour: a typical run is a **cold** phase (first touch of every
//! query — cache misses, bind misses) followed by a **warm** phase at a higher rate (caches
//! hot).  Each phase has its own Poisson rate; arrival offsets accumulate across phases.

use crate::replay::{parse_spec, WorkloadEntry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;
use urm_core::CoreResult;

/// One phase of an open-loop run: `requests` Poisson arrivals at `rate_per_sec`.
#[derive(Debug, Clone)]
pub struct PhaseSpec {
    /// Phase name, carried through to the reported rows (e.g. `"cold"`, `"warm"`).
    pub name: String,
    /// Poisson arrival rate λ, in requests per second.
    pub rate_per_sec: f64,
    /// Number of arrivals in this phase.
    pub requests: usize,
}

impl PhaseSpec {
    /// A named phase.
    #[must_use]
    pub fn new(name: &str, rate_per_sec: f64, requests: usize) -> PhaseSpec {
        PhaseSpec {
            name: name.into(),
            rate_per_sec,
            requests,
        }
    }
}

/// Configuration of an open-loop schedule.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Number of simulated clients; each arrival is assigned one uniformly.  Clients matter to
    /// the server's per-client admission (token buckets) and to connection reuse.
    pub clients: usize,
    /// The query mix, as workload specs (`Q1`, `sel:2`, …).  Arrivals draw uniformly from this
    /// list, so a spec listed twice is sent twice as often — weights are expressed by
    /// repetition, like ` xN` lines in workload files.
    pub mix: Vec<String>,
    /// The phases, in order.  Arrival offsets accumulate across phases.
    pub phases: Vec<PhaseSpec>,
    /// Seed for the arrival process and the client/spec draws.
    pub seed: u64,
}

impl OpenLoopConfig {
    /// The harness default: the five Excel queries of Table III plus the sweep families, four
    /// clients, a cold first-touch phase then a faster warm phase.
    #[must_use]
    pub fn excel_default(requests_per_phase: usize, rate_per_sec: f64) -> OpenLoopConfig {
        OpenLoopConfig {
            clients: 4,
            mix: [
                "Q1", "Q2", "Q3", "Q4", "Q5", "sel:2", "sel:4", "join:2", "prod:2",
            ]
            .map(String::from)
            .to_vec(),
            phases: vec![
                PhaseSpec::new("cold", rate_per_sec, requests_per_phase),
                PhaseSpec::new("warm", rate_per_sec * 2.0, requests_per_phase),
            ],
            seed: 42,
        }
    }
}

/// One scheduled request.
#[derive(Debug, Clone)]
pub struct Arrival {
    /// Index into [`OpenLoopConfig::phases`].
    pub phase: usize,
    /// When to send, as an offset from the start of the run (cumulative across phases).
    pub at: Duration,
    /// Which simulated client sends it (`0..clients`).
    pub client: usize,
    /// The parsed query (label, target schema and target query).
    pub entry: WorkloadEntry,
}

/// Precomputes the full arrival schedule: for each phase, `requests` arrivals with
/// exponentially distributed inter-arrival gaps (`−ln(U)/λ`, the Poisson process), each
/// carrying a uniformly drawn client and a uniformly drawn spec from the mix.
///
/// Deterministic in the config; the only error source is an unparsable spec in the mix.
pub fn schedule(config: &OpenLoopConfig) -> CoreResult<Vec<Arrival>> {
    let parsed: Vec<WorkloadEntry> = config
        .mix
        .iter()
        .map(|spec| parse_spec(spec))
        .collect::<CoreResult<_>>()?;
    let clients = config.clients.max(1);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut arrivals = Vec::new();
    let mut now = 0.0f64;
    for (phase, spec) in config.phases.iter().enumerate() {
        let rate = spec.rate_per_sec.max(f64::MIN_POSITIVE);
        for _ in 0..spec.requests {
            // U is in [0, 1); flip to (0, 1] so ln() is finite.
            let u: f64 = 1.0 - rng.gen_range(0.0..1.0);
            now += -u.ln() / rate;
            arrivals.push(Arrival {
                phase,
                at: Duration::from_secs_f64(now),
                client: rng.gen_range(0..clients),
                entry: parsed[rng.gen_range(0..parsed.len())].clone(),
            });
        }
    }
    Ok(arrivals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::TargetSchemaKind;

    fn config() -> OpenLoopConfig {
        OpenLoopConfig {
            clients: 3,
            mix: vec!["Q1".into(), "Q2".into(), "join:2".into()],
            phases: vec![
                PhaseSpec::new("cold", 100.0, 40),
                PhaseSpec::new("warm", 200.0, 40),
            ],
            seed: 9,
        }
    }

    #[test]
    fn schedules_are_deterministic_and_monotonic() {
        let a = schedule(&config()).unwrap();
        let b = schedule(&config()).unwrap();
        assert_eq!(a.len(), 80);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.at, y.at);
            assert_eq!(x.client, y.client);
            assert_eq!(x.entry.label, y.entry.label);
        }
        for pair in a.windows(2) {
            assert!(pair[0].at <= pair[1].at, "arrivals out of order");
            assert!(pair[0].phase <= pair[1].phase);
        }
        assert!(a.iter().all(|arr| arr.client < 3));
        assert!(a
            .iter()
            .all(|arr| arr.entry.target == TargetSchemaKind::Excel));
    }

    #[test]
    fn rates_shape_the_gaps() {
        // 40 arrivals at λ=100/s average 10ms apart: the cold phase should span roughly
        // 400ms, and the warm phase (double rate) roughly half that.  Generous bounds — this
        // checks the rate parameter is wired through, not the quality of the RNG.
        let arrivals = schedule(&config()).unwrap();
        let cold_span = arrivals[39].at - arrivals[0].at;
        let warm_span = arrivals[79].at - arrivals[40].at;
        assert!(
            cold_span > Duration::from_millis(100),
            "cold span {cold_span:?}"
        );
        assert!(
            cold_span < Duration::from_millis(1600),
            "cold span {cold_span:?}"
        );
        assert!(
            warm_span < cold_span,
            "higher rate must pack arrivals tighter"
        );
    }

    #[test]
    fn bad_specs_are_rejected() {
        let mut bad = config();
        bad.mix.push("Q99".into());
        assert!(schedule(&bad).is_err());
    }

    #[test]
    fn default_mix_parses() {
        let arrivals = schedule(&OpenLoopConfig::excel_default(10, 50.0)).unwrap();
        assert_eq!(arrivals.len(), 20);
    }
}
