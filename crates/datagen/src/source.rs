//! The TPC-H-flavoured purchase-order source schema and its data generator.
//!
//! The source schema has 8 relations and 46 attributes, like the relational rendering of TPC-H
//! the paper feeds to COMA++.  Attribute names are chosen so that (i) every attribute name is
//! globally unique (which makes the "minimal covering set of source relations" of the
//! reformulation rules unambiguous) and (ii) several source attributes are plausible matches
//! for each target attribute the workload uses (phones, addresses, prices, order numbers…),
//! which is what makes the generated mapping sets genuinely ambiguous — the phenomenon the
//! paper's algorithms exploit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use urm_matching::SchemaDef;
use urm_storage::{Attribute, Catalog, DataType, Relation, Schema, Tuple, Value};

/// Constants planted into the generated data so that the workload's selection predicates
/// (Table III) have matching rows.
pub mod planted {
    /// The telephone number used by Q1, Q5, Q6 and Q9.
    pub const TELEPHONE: &str = "335-1736";
    /// The person used by Q1, Q6, Q8 and Q10.
    pub const PERSON: &str = "Mary";
    /// The company / address literal used by Q5, Q8, Q9 and Q10.
    pub const COMPANY: &str = "ABC";
    /// The street used by Q5, Q6 and Q7.
    pub const STREET: &str = "Central";
    /// The item / order number used by Q2, Q3, Q4, Q7 and Q9.
    pub const NUMBER: &str = "00001";
    /// The priority used by Q1.
    pub const PRIORITY: i64 = 2;
}

/// The matcher-facing description of the source schema (8 relations, 46 attributes).
#[must_use]
pub fn source_schema_def() -> SchemaDef {
    SchemaDef::new("TPCH")
        .with_relation(
            "Orders",
            [
                "orderNum",
                "orderDate",
                "orderStatus",
                "totalPrice",
                "orderPriority",
                "clerk",
            ],
        )
        .with_relation(
            "Customer",
            [
                "custName",
                "telephone",
                "homePhone",
                "company",
                "custAddress",
                "homeAddress",
                "custNation",
            ],
        )
        .with_relation(
            "LineItem",
            [
                "itemNum",
                "itemOrderNum",
                "quantity",
                "unitPrice",
                "extendedPrice",
                "discount",
                "tax",
                "lineStatus",
            ],
        )
        .with_relation(
            "Part",
            ["partNum", "partName", "brand", "partType", "retailPrice"],
        )
        .with_relation(
            "Supplier",
            ["suppName", "suppPhone", "suppAddress", "suppNation"],
        )
        .with_relation("Nation", ["nationName", "regionName"])
        .with_relation(
            "Invoice",
            [
                "invoiceNum",
                "invoiceTo",
                "billTo",
                "billToAddress",
                "invoiceDate",
                "invoiceAmount",
            ],
        )
        .with_relation(
            "Shipment",
            [
                "shipOrderNum",
                "deliverTo",
                "deliverToStreet",
                "deliverToCity",
                "shipMode",
                "shipDate",
                "shipToPhone",
                "shipToAddress",
            ],
        )
}

fn order_number(i: usize) -> String {
    format!("{:05}", (i % 400) + 1)
}

/// Deterministic Zipf(s=1) rank in `1..=n` for row `i` — the source of the *skewed* join keys
/// (`LineItem.quantity`) the `skew:N` workload family joins on.  Rank `r` receives probability
/// mass proportional to `1/r`, so rank 1 alone carries ~22% of the rows at `n = 50`: exactly
/// the head-heavy key distribution that makes a static uniform cardinality estimate pick the
/// wrong hash-join build side, which the adaptive feedback loop then corrects.
///
/// The row index is mixed with a fixed 64-bit finalizer instead of drawing from the generator's
/// `StdRng` so the change is invisible to every *other* column: the RNG consumption sequence —
/// and therefore all previously generated data — stays byte-identical per seed.
fn zipf_rank(n: usize, i: usize) -> usize {
    let mut x = (i as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    let u = (x >> 11) as f64 / (1u64 << 53) as f64;
    let total: f64 = (1..=n).map(|r| 1.0 / r as f64).sum();
    let mut acc = 0.0;
    for r in 1..=n {
        acc += 1.0 / (r as f64 * total);
        if u < acc {
            return r;
        }
    }
    n
}

fn person_name(rng: &mut StdRng, planted_every: usize, i: usize) -> Value {
    if i.is_multiple_of(planted_every) {
        Value::from(planted::PERSON)
    } else {
        Value::from(format!("person{}", rng.gen_range(0..10_000)))
    }
}

fn phone(rng: &mut StdRng, planted_every: usize, i: usize) -> Value {
    if i.is_multiple_of(planted_every) {
        Value::from(planted::TELEPHONE)
    } else {
        Value::from(format!(
            "{:03}-{:04}",
            rng.gen_range(200..999),
            rng.gen_range(0..9999)
        ))
    }
}

fn street(rng: &mut StdRng, planted_every: usize, i: usize) -> Value {
    if i.is_multiple_of(planted_every) {
        Value::from(planted::STREET)
    } else {
        Value::from(format!("{} Road", rng.gen_range(1..500)))
    }
}

fn company(rng: &mut StdRng, planted_every: usize, i: usize) -> Value {
    if i.is_multiple_of(planted_every) {
        Value::from(planted::COMPANY)
    } else {
        Value::from(format!("company{}", rng.gen_range(0..5_000)))
    }
}

/// Generates the source instance `D` at the given scale.
///
/// `scale` controls row counts: `Orders` and `Invoice`/`Shipment` get `2 × scale` rows,
/// `Customer` and `Part` get `scale`, `LineItem` gets `4 × scale`.  The same seed always
/// produces the same catalog.
#[must_use]
pub fn generate_source(scale: usize, seed: u64) -> Catalog {
    let scale = scale.max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut catalog = Catalog::new();

    // Orders
    let schema = Schema::new(
        "Orders",
        vec![
            Attribute::new("orderNum", DataType::Text),
            Attribute::new("orderDate", DataType::Text),
            Attribute::new("orderStatus", DataType::Text),
            Attribute::new("totalPrice", DataType::Float),
            Attribute::new("orderPriority", DataType::Int),
            Attribute::new("clerk", DataType::Text),
        ],
    );
    let mut rel = Relation::empty(schema);
    for i in 0..(2 * scale) {
        rel.push_unchecked(Tuple::new(vec![
            Value::from(order_number(i)),
            Value::from(format!("2011-{:02}-{:02}", (i % 12) + 1, (i % 28) + 1)),
            Value::from(if i % 3 == 0 { "OPEN" } else { "DONE" }),
            Value::from(rng.gen_range(10.0..10_000.0)),
            Value::from((i % 5) as i64 + 1),
            Value::from(format!("clerk{}", i % 50)),
        ]));
    }
    catalog.insert(rel);

    // Customer
    let schema = Schema::new(
        "Customer",
        vec![
            Attribute::new("custName", DataType::Text),
            Attribute::new("telephone", DataType::Text),
            Attribute::new("homePhone", DataType::Text),
            Attribute::new("company", DataType::Text),
            Attribute::new("custAddress", DataType::Text),
            Attribute::new("homeAddress", DataType::Text),
            Attribute::new("custNation", DataType::Text),
        ],
    );
    let mut rel = Relation::empty(schema);
    for i in 0..scale {
        rel.push_unchecked(Tuple::new(vec![
            person_name(&mut rng, 9, i),
            phone(&mut rng, 7, i),
            phone(&mut rng, 11, i + 3),
            company(&mut rng, 6, i),
            street(&mut rng, 8, i),
            street(&mut rng, 13, i + 5),
            Value::from(format!("nation{}", i % 25)),
        ]));
    }
    catalog.insert(rel);

    // LineItem
    let schema = Schema::new(
        "LineItem",
        vec![
            Attribute::new("itemNum", DataType::Text),
            Attribute::new("itemOrderNum", DataType::Text),
            Attribute::new("quantity", DataType::Int),
            Attribute::new("unitPrice", DataType::Float),
            Attribute::new("extendedPrice", DataType::Float),
            Attribute::new("discount", DataType::Float),
            Attribute::new("tax", DataType::Float),
            Attribute::new("lineStatus", DataType::Text),
        ],
    );
    let mut rel = Relation::empty(schema);
    for i in 0..(4 * scale) {
        let qty = zipf_rank(50, i) as i64;
        let unit = rng.gen_range(1.0..500.0f64);
        rel.push_unchecked(Tuple::new(vec![
            Value::from(format!("{:05}", (i % 60) + 1)),
            Value::from(order_number(i / 2)),
            Value::from(qty),
            Value::from((unit * 100.0).round() / 100.0),
            Value::from((unit * qty as f64 * 100.0).round() / 100.0),
            Value::from(rng.gen_range(0.0..0.1)),
            Value::from(0.08),
            Value::from(if i % 2 == 0 { "F" } else { "O" }),
        ]));
    }
    catalog.insert(rel);

    // Part
    let schema = Schema::new(
        "Part",
        vec![
            Attribute::new("partNum", DataType::Text),
            Attribute::new("partName", DataType::Text),
            Attribute::new("brand", DataType::Text),
            Attribute::new("partType", DataType::Text),
            Attribute::new("retailPrice", DataType::Float),
        ],
    );
    let mut rel = Relation::empty(schema);
    for i in 0..scale {
        rel.push_unchecked(Tuple::new(vec![
            Value::from(format!("{:05}", (i % 60) + 1)),
            Value::from(format!("part{}", i)),
            Value::from(format!("Brand#{}", i % 5)),
            Value::from(if i % 2 == 0 { "STANDARD" } else { "PROMO" }),
            Value::from(rng.gen_range(1.0..900.0)),
        ]));
    }
    catalog.insert(rel);

    // Supplier
    let schema = Schema::new(
        "Supplier",
        vec![
            Attribute::new("suppName", DataType::Text),
            Attribute::new("suppPhone", DataType::Text),
            Attribute::new("suppAddress", DataType::Text),
            Attribute::new("suppNation", DataType::Text),
        ],
    );
    let mut rel = Relation::empty(schema);
    for i in 0..(scale / 2 + 1) {
        rel.push_unchecked(Tuple::new(vec![
            Value::from(format!("supplier{}", i)),
            phone(&mut rng, 17, i),
            street(&mut rng, 19, i + 2),
            Value::from(format!("nation{}", i % 25)),
        ]));
    }
    catalog.insert(rel);

    // Nation
    let schema = Schema::new(
        "Nation",
        vec![
            Attribute::new("nationName", DataType::Text),
            Attribute::new("regionName", DataType::Text),
        ],
    );
    let mut rel = Relation::empty(schema);
    for i in 0..25 {
        rel.push_unchecked(Tuple::new(vec![
            Value::from(format!("nation{}", i)),
            Value::from(format!("region{}", i % 5)),
        ]));
    }
    catalog.insert(rel);

    // Invoice
    let schema = Schema::new(
        "Invoice",
        vec![
            Attribute::new("invoiceNum", DataType::Text),
            Attribute::new("invoiceTo", DataType::Text),
            Attribute::new("billTo", DataType::Text),
            Attribute::new("billToAddress", DataType::Text),
            Attribute::new("invoiceDate", DataType::Text),
            Attribute::new("invoiceAmount", DataType::Float),
        ],
    );
    let mut rel = Relation::empty(schema);
    for i in 0..(2 * scale) {
        rel.push_unchecked(Tuple::new(vec![
            Value::from(order_number(i)),
            person_name(&mut rng, 5, i),
            person_name(&mut rng, 8, i + 1),
            company(&mut rng, 7, i),
            Value::from(format!("2011-{:02}-{:02}", (i % 12) + 1, (i % 28) + 1)),
            Value::from(rng.gen_range(10.0..9_999.0)),
        ]));
    }
    catalog.insert(rel);

    // Shipment
    let schema = Schema::new(
        "Shipment",
        vec![
            Attribute::new("shipOrderNum", DataType::Text),
            Attribute::new("deliverTo", DataType::Text),
            Attribute::new("deliverToStreet", DataType::Text),
            Attribute::new("deliverToCity", DataType::Text),
            Attribute::new("shipMode", DataType::Text),
            Attribute::new("shipDate", DataType::Text),
            Attribute::new("shipToPhone", DataType::Text),
            Attribute::new("shipToAddress", DataType::Text),
        ],
    );
    let mut rel = Relation::empty(schema);
    for i in 0..(2 * scale) {
        rel.push_unchecked(Tuple::new(vec![
            Value::from(order_number(i)),
            person_name(&mut rng, 6, i),
            street(&mut rng, 5, i),
            Value::from(format!("city{}", i % 40)),
            Value::from(if i % 2 == 0 { "AIR" } else { "TRUCK" }),
            Value::from(format!("2011-{:02}-{:02}", (i % 12) + 1, (i % 28) + 1)),
            phone(&mut rng, 9, i),
            company(&mut rng, 8, i + 2),
        ]));
    }
    catalog.insert(rel);

    catalog
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_def_has_8_relations_and_46_attributes() {
        let def = source_schema_def();
        assert_eq!(def.relations().len(), 8);
        assert_eq!(def.attribute_count(), 46);
    }

    #[test]
    fn schema_def_attribute_names_are_globally_unique() {
        let def = source_schema_def();
        let attrs = def.all_attributes();
        let mut names: Vec<&str> = attrs.iter().map(|a| a.attr.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }

    #[test]
    fn generated_catalog_matches_schema_def() {
        let def = source_schema_def();
        let catalog = generate_source(20, 1);
        assert_eq!(catalog.len(), 8);
        for (relation, attrs) in def.relations() {
            let rel = catalog.get(relation).expect("relation generated");
            assert_eq!(rel.schema().arity(), attrs.len(), "{relation}");
            for a in attrs {
                assert!(rel.schema().contains(a), "{relation}.{a}");
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed_and_scales_with_scale() {
        let a = generate_source(10, 42);
        let b = generate_source(10, 42);
        assert_eq!(a.total_tuples(), b.total_tuples());
        assert_eq!(
            a.get("Customer").unwrap().rows(),
            b.get("Customer").unwrap().rows()
        );
        let big = generate_source(40, 42);
        assert!(big.total_tuples() > a.total_tuples() * 3);
        assert!(big.estimated_bytes() > a.estimated_bytes());
    }

    #[test]
    fn quantity_is_zipf_skewed() {
        // Rank 1 must dominate: at Zipf(s=1) over 50 ranks its share is ~22%, an order of
        // magnitude above the uniform 2% — the skew the `skew:N` join family relies on.
        let catalog = generate_source(200, 3);
        let rel = catalog.get("LineItem").unwrap();
        let qty = rel.column("quantity").unwrap();
        let ones = qty.iter().filter(|v| **v == Value::from(1i64)).count();
        let total = qty.len();
        assert!(
            ones * 100 >= total * 15,
            "rank-1 share {ones}/{total} is not head-heavy"
        );
        assert!(qty.iter().all(|v| {
            let q = v.as_i64().unwrap();
            (1..=50).contains(&q)
        }));
    }

    #[test]
    fn planted_constants_appear_in_the_data() {
        let catalog = generate_source(50, 7);
        let has = |rel: &str, attr: &str, value: Value| {
            let r = catalog.get(rel).unwrap();
            let col = r.column(attr).unwrap();
            col.contains(&value)
        };
        assert!(has(
            "Customer",
            "telephone",
            Value::from(planted::TELEPHONE)
        ));
        assert!(has("Invoice", "invoiceTo", Value::from(planted::PERSON)));
        assert!(has(
            "Invoice",
            "billToAddress",
            Value::from(planted::COMPANY)
        ));
        assert!(has(
            "Shipment",
            "deliverToStreet",
            Value::from(planted::STREET)
        ));
        assert!(has("Orders", "orderNum", Value::from(planted::NUMBER)));
        assert!(has("LineItem", "itemNum", Value::from(planted::NUMBER)));
        assert!(has(
            "Orders",
            "orderPriority",
            Value::from(planted::PRIORITY)
        ));
    }
}
