//! Sharded source instances: deterministic catalog partitioning over the generator.
//!
//! [`shard_catalog`] cuts a full catalog into one shard's view (slice `i` of every relation,
//! per the [`ShardSpec`]); [`partition_catalog`] produces all shards at once together with the
//! per-relation row→shard assignments, and [`merge_catalog`] reassembles the **exact**
//! single-node catalog — schemas, rows and row order — from the parts.  [`sharded_source`]
//! composes the generator with the cutter, so shard processes can build their slice from
//! `(scale, seed, spec)` alone without ever materialising the full instance twice.

use crate::source::generate_source;
use std::collections::BTreeMap;
use urm_storage::shard::{self, ShardScheme, ShardSpec};
use urm_storage::{Catalog, StorageResult};

/// Per-relation row→shard assignments, the side channel [`merge_catalog`] needs to restore
/// original row order under hash partitioning.
pub type ShardAssignments = BTreeMap<String, Vec<usize>>;

/// One shard's view of `full`: slice `spec.index` of every relation, same names and schemas.
#[must_use]
pub fn shard_catalog(full: &Catalog, spec: ShardSpec) -> Catalog {
    let mut catalog = Catalog::new();
    for (_, relation) in full.iter() {
        catalog.insert(spec.slice(relation));
    }
    catalog
}

/// Cuts `full` into `shards` catalogs plus the assignments that merge them back losslessly.
#[must_use]
pub fn partition_catalog(
    full: &Catalog,
    shards: usize,
    scheme: ShardScheme,
) -> (Vec<Catalog>, ShardAssignments) {
    let shards = shards.max(1);
    let mut parts = vec![Catalog::new(); shards];
    let mut assignments = ShardAssignments::new();
    for (name, relation) in full.iter() {
        assignments.insert(
            name.to_string(),
            shard::row_shards(relation, shards, scheme),
        );
        for (part, slice) in parts
            .iter_mut()
            .zip(shard::partition(relation, shards, scheme))
        {
            part.insert(slice);
        }
    }
    (parts, assignments)
}

/// Reassembles the single-node catalog from shard parts and their assignments.
///
/// The result is byte-identical to the catalog [`partition_catalog`] cut — relation for
/// relation, row for row, in original order.
pub fn merge_catalog(parts: &[Catalog], assignments: &ShardAssignments) -> StorageResult<Catalog> {
    let mut merged = Catalog::new();
    for (name, assignment) in assignments {
        let slices: Vec<_> = parts
            .iter()
            .map(|part| part.require(name).map(|r| (*r).clone()))
            .collect::<StorageResult<_>>()?;
        merged.insert(shard::merge(&slices, assignment)?);
    }
    Ok(merged)
}

/// Generates shard `spec.index`'s slice of the `(scale, seed)` source instance directly.
#[must_use]
pub fn sharded_source(scale: usize, seed: u64, spec: ShardSpec) -> Catalog {
    shard_catalog(&generate_source(scale, seed), spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalogs_identical(a: &Catalog, b: &Catalog) {
        let a_names: Vec<_> = a.relation_names().collect();
        let b_names: Vec<_> = b.relation_names().collect();
        assert_eq!(a_names, b_names);
        for (name, rel) in a.iter() {
            let other = b.require(name).unwrap();
            assert_eq!(rel.schema(), other.schema(), "{name} schema");
            assert_eq!(rel.rows(), other.rows(), "{name} rows");
        }
    }

    #[test]
    fn partition_then_merge_is_identity() {
        let full = generate_source(30, 7);
        for scheme in [ShardScheme::Hash, ShardScheme::Range] {
            for shards in 1..=4 {
                let (parts, assignments) = partition_catalog(&full, shards, scheme);
                assert_eq!(parts.len(), shards);
                let merged = merge_catalog(&parts, &assignments).unwrap();
                catalogs_identical(&full, &merged);
            }
        }
    }

    #[test]
    fn sharded_source_matches_partitioned_generator_output() {
        let full = generate_source(20, 11);
        let (parts, _) = partition_catalog(&full, 3, ShardScheme::Hash);
        for (index, part) in parts.iter().enumerate() {
            let spec = ShardSpec::new(3, index, ShardScheme::Hash).unwrap();
            catalogs_identical(&sharded_source(20, 11, spec), part);
        }
    }

    #[test]
    fn shards_cover_the_instance_without_overlap() {
        let full = generate_source(25, 3);
        let (parts, _) = partition_catalog(&full, 4, ShardScheme::Hash);
        let total: usize = parts.iter().map(Catalog::total_tuples).sum();
        assert_eq!(total, full.total_tuples());
        for part in &parts {
            assert_eq!(part.len(), full.len(), "every shard sees every relation");
        }
    }
}
