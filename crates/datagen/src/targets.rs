//! The Excel, Noris and Paragon target schemas.
//!
//! The paper uses three purchase-order schemas shipped with COMA++, converted to relational
//! form (relations `PO` and `Item`) with 48, 66 and 69 attributes respectively.  The attribute
//! lists below keep those counts and include every attribute the workload of Table III touches;
//! the remaining attributes are realistic purchase-order fields that mostly match nothing in
//! the source schema (exactly like the real schemas, where COMA++ finds correspondences for
//! only a fraction of the attributes).

use urm_matching::SchemaDef;

/// The Excel target schema: `PO` (30 attributes) + `Item` (18 attributes) = 48.
#[must_use]
pub fn excel() -> SchemaDef {
    SchemaDef::new("Excel")
        .with_relation(
            "PO",
            [
                "orderNum",
                "orderDate",
                "telephone",
                "priority",
                "invoiceTo",
                "company",
                "deliverToStreet",
                "deliverToCity",
                "billTo",
                "billToAddress",
                "status",
                "totalPrice",
                "clerk",
                "contactName",
                "shipMode",
                "shipDate",
                "remark",
                "currency",
                "taxRate",
                "discountRate",
                "paymentTerms",
                "dueDate",
                "approvedBy",
                "department",
                "costCenter",
                "projectCode",
                "warehouse",
                "region",
                "nation",
                "customerRef",
            ],
        )
        .with_relation(
            "Item",
            [
                "itemNum",
                "orderNum",
                "quantity",
                "unitPrice",
                "price",
                "description",
                "partName",
                "brand",
                "itemType",
                "size",
                "weight",
                "color",
                "lineStatus",
                "discount",
                "tax",
                "supplier",
                "origin",
                "barcode",
            ],
        )
}

/// The Noris target schema: `PO` (40 attributes) + `Item` (26 attributes) = 66.
#[must_use]
pub fn noris() -> SchemaDef {
    SchemaDef::new("Noris")
        .with_relation(
            "PO",
            [
                "orderNum",
                "orderDate",
                "telephone",
                "invoiceTo",
                "deliverTo",
                "deliverToStreet",
                "deliverToCity",
                "company",
                "billTo",
                "billToAddress",
                "status",
                "totalPrice",
                "priority",
                "clerk",
                "contactName",
                "contactFax",
                "shipMode",
                "shipDate",
                "remark",
                "currency",
                "taxRate",
                "discountRate",
                "paymentTerms",
                "dueDate",
                "approvedBy",
                "department",
                "costCenter",
                "projectCode",
                "warehouse",
                "region",
                "nation",
                "customerRef",
                "salesPerson",
                "salesOffice",
                "incoterms",
                "deliveryWindow",
                "orderChannel",
                "loyaltyTier",
                "creditTerms",
                "accountManager",
            ],
        )
        .with_relation(
            "Item",
            [
                "itemNum",
                "orderNum",
                "quantity",
                "unitPrice",
                "price",
                "description",
                "partName",
                "brand",
                "itemType",
                "size",
                "weight",
                "color",
                "lineStatus",
                "discount",
                "tax",
                "supplier",
                "origin",
                "barcode",
                "packaging",
                "warranty",
                "serialRange",
                "hazardClass",
                "customsCode",
                "leadTime",
                "reorderLevel",
                "binLocation",
            ],
        )
}

/// The Paragon target schema: `PO` (42 attributes) + `Item` (27 attributes) = 69.
#[must_use]
pub fn paragon() -> SchemaDef {
    SchemaDef::new("Paragon")
        .with_relation(
            "PO",
            [
                "orderNum",
                "orderDate",
                "telephone",
                "invoiceTo",
                "billTo",
                "billToAddress",
                "shipToAddress",
                "shipToPhone",
                "deliverTo",
                "deliverToStreet",
                "deliverToCity",
                "company",
                "status",
                "totalPrice",
                "priority",
                "clerk",
                "contactName",
                "contactFax",
                "shipMode",
                "shipDate",
                "remark",
                "currency",
                "taxRate",
                "discountRate",
                "paymentTerms",
                "dueDate",
                "approvedBy",
                "department",
                "costCenter",
                "projectCode",
                "warehouse",
                "region",
                "nation",
                "customerRef",
                "salesPerson",
                "salesOffice",
                "incoterms",
                "deliveryWindow",
                "orderChannel",
                "loyaltyTier",
                "creditTerms",
                "accountManager",
            ],
        )
        .with_relation(
            "Item",
            [
                "itemNum",
                "orderNum",
                "quantity",
                "unitPrice",
                "price",
                "description",
                "partName",
                "brand",
                "itemType",
                "size",
                "weight",
                "color",
                "lineStatus",
                "discount",
                "tax",
                "supplier",
                "origin",
                "barcode",
                "packaging",
                "warranty",
                "serialRange",
                "hazardClass",
                "customsCode",
                "leadTime",
                "reorderLevel",
                "binLocation",
                "inspectionCode",
            ],
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribute_counts_match_the_paper() {
        assert_eq!(excel().attribute_count(), 48);
        assert_eq!(noris().attribute_count(), 66);
        assert_eq!(paragon().attribute_count(), 69);
    }

    #[test]
    fn every_schema_has_po_and_item() {
        for def in [excel(), noris(), paragon()] {
            assert!(def.attributes_of("PO").is_some(), "{}", def.name());
            assert!(def.attributes_of("Item").is_some(), "{}", def.name());
        }
    }

    #[test]
    fn workload_attributes_are_present() {
        let excel = excel();
        for a in [
            "telephone",
            "priority",
            "invoiceTo",
            "company",
            "deliverToStreet",
            "orderNum",
        ] {
            assert!(
                excel.attributes_of("PO").unwrap().iter().any(|x| x == a),
                "Excel PO.{a}"
            );
        }
        for a in ["itemNum", "quantity", "orderNum"] {
            assert!(
                excel.attributes_of("Item").unwrap().iter().any(|x| x == a),
                "Excel Item.{a}"
            );
        }
        let noris = noris();
        for a in [
            "telephone",
            "invoiceTo",
            "deliverTo",
            "deliverToStreet",
            "orderNum",
        ] {
            assert!(
                noris.attributes_of("PO").unwrap().iter().any(|x| x == a),
                "Noris PO.{a}"
            );
        }
        for a in ["itemNum", "unitPrice"] {
            assert!(
                noris.attributes_of("Item").unwrap().iter().any(|x| x == a),
                "Noris Item.{a}"
            );
        }
        let paragon = paragon();
        for a in [
            "billTo",
            "shipToAddress",
            "shipToPhone",
            "telephone",
            "billToAddress",
            "invoiceTo",
        ] {
            assert!(
                paragon.attributes_of("PO").unwrap().iter().any(|x| x == a),
                "Paragon PO.{a}"
            );
        }
        for a in ["itemNum", "price"] {
            assert!(
                paragon
                    .attributes_of("Item")
                    .unwrap()
                    .iter()
                    .any(|x| x == a),
                "Paragon Item.{a}"
            );
        }
    }

    #[test]
    fn attribute_names_are_unique_within_each_relation() {
        for def in [excel(), noris(), paragon()] {
            for (rel, attrs) in def.relations() {
                let mut names = attrs.clone();
                names.sort();
                let before = names.len();
                names.dedup();
                assert_eq!(before, names.len(), "{}.{rel}", def.name());
            }
        }
    }
}
