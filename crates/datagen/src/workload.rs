//! The paper's workload: the ten target queries of Table III plus the parameterised query
//! families used by Figures 11(d) and 11(e).

use crate::scenario::TargetSchemaKind;
use crate::source::planted;
use urm_core::query::TargetQuery;
use urm_core::CoreResult;
use urm_storage::Value;

/// Identifier of one of the ten workload queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryId {
    /// Q1 (Excel): three selections on `PO`.
    Q1,
    /// Q2 (Excel): two selections over `PO × Item`.
    Q2,
    /// Q3 (Excel): selections and joins over `PO × Item1 × Item2`.
    Q3,
    /// Q4 (Excel): the default query — self-joins of `PO` and `Item` plus a selection.
    Q4,
    /// Q5 (Excel): COUNT over four selections on `PO`.
    Q5,
    /// Q6 (Noris): three selections on `PO`.
    Q6,
    /// Q7 (Noris): projection over selections on `PO × Item`.
    Q7,
    /// Q8 (Paragon): three selections on `PO`.
    Q8,
    /// Q9 (Paragon): SUM of prices over selections on `PO × Item`.
    Q9,
    /// Q10 (Paragon): COUNT over selections on `PO × Item`.
    Q10,
}

impl QueryId {
    /// All ten queries in order.
    #[must_use]
    pub fn all() -> [QueryId; 10] {
        use QueryId::*;
        [Q1, Q2, Q3, Q4, Q5, Q6, Q7, Q8, Q9, Q10]
    }

    /// The target schema each query is defined on (Table III's `T` column).
    #[must_use]
    pub fn target(self) -> TargetSchemaKind {
        use QueryId::*;
        match self {
            Q1 | Q2 | Q3 | Q4 | Q5 => TargetSchemaKind::Excel,
            Q6 | Q7 => TargetSchemaKind::Noris,
            Q8 | Q9 | Q10 => TargetSchemaKind::Paragon,
        }
    }

    /// Index (1-based) used in the figures.
    #[must_use]
    pub fn number(self) -> usize {
        use QueryId::*;
        match self {
            Q1 => 1,
            Q2 => 2,
            Q3 => 3,
            Q4 => 4,
            Q5 => 5,
            Q6 => 6,
            Q7 => 7,
            Q8 => 8,
            Q9 => 9,
            Q10 => 10,
        }
    }
}

/// Builds one of the Table III queries.
#[must_use]
pub fn query(id: QueryId) -> TargetQuery {
    let result = match id {
        QueryId::Q1 => TargetQuery::builder("Q1")
            .relation("PO")
            .filter_eq("PO.telephone", planted::TELEPHONE)
            .filter_eq("PO.priority", planted::PRIORITY)
            .filter_eq("PO.invoiceTo", planted::PERSON)
            .returning(["PO.orderNum", "PO.telephone", "PO.invoiceTo"])
            .build(),
        QueryId::Q2 => TargetQuery::builder("Q2")
            .relation("PO")
            .relation("Item")
            .filter_eq("Item.quantity", 10i64)
            .filter_eq("Item.itemNum", planted::NUMBER)
            .returning(["PO.orderNum", "Item.itemNum", "Item.quantity"])
            .build(),
        QueryId::Q3 => TargetQuery::builder("Q3")
            .relation("PO")
            .relation_as("Item", "Item1")
            .relation_as("Item", "Item2")
            .filter_eq("PO.telephone", planted::TELEPHONE)
            .filter_eq("Item1.itemNum", planted::NUMBER)
            .join("PO.orderNum", "Item1.orderNum")
            .join("Item1.orderNum", "Item2.orderNum")
            .returning(["PO.orderNum", "Item2.itemNum"])
            .build(),
        QueryId::Q4 => TargetQuery::builder("Q4")
            .relation_as("PO", "PO1")
            .relation_as("PO", "PO2")
            .relation_as("Item", "Item1")
            .relation_as("Item", "Item2")
            .filter_eq("Item1.itemNum", planted::NUMBER)
            .join("PO1.orderNum", "PO2.orderNum")
            .join("Item1.orderNum", "Item2.orderNum")
            .join("PO1.orderNum", "Item1.orderNum")
            .returning(["PO1.orderNum", "Item2.itemNum"])
            .build(),
        QueryId::Q5 => TargetQuery::builder("Q5")
            .relation("PO")
            .filter_eq("PO.telephone", planted::TELEPHONE)
            .filter_eq("PO.company", planted::COMPANY)
            .filter_eq("PO.invoiceTo", planted::PERSON)
            .filter_eq("PO.deliverToStreet", planted::STREET)
            .count()
            .build(),
        QueryId::Q6 => TargetQuery::builder("Q6")
            .relation("PO")
            .filter_eq("PO.telephone", planted::TELEPHONE)
            .filter_eq("PO.invoiceTo", planted::PERSON)
            .filter_eq("PO.deliverToStreet", planted::STREET)
            .returning(["PO.orderNum", "PO.invoiceTo"])
            .build(),
        QueryId::Q7 => TargetQuery::builder("Q7")
            .relation("PO")
            .relation("Item")
            .filter_eq("PO.orderNum", planted::NUMBER)
            .filter_eq("PO.deliverTo", planted::PERSON)
            .filter_eq("PO.deliverToStreet", planted::STREET)
            .returning(["Item.itemNum", "Item.unitPrice"])
            .build(),
        QueryId::Q8 => TargetQuery::builder("Q8")
            .relation("PO")
            .filter_eq("PO.billTo", planted::PERSON)
            .filter_eq("PO.shipToAddress", planted::COMPANY)
            .filter_eq("PO.shipToPhone", planted::TELEPHONE)
            .returning(["PO.orderNum", "PO.billTo"])
            .build(),
        QueryId::Q9 => TargetQuery::builder("Q9")
            .relation("PO")
            .relation("Item")
            .filter_eq("PO.telephone", planted::TELEPHONE)
            .filter_eq("PO.billToAddress", planted::COMPANY)
            .filter_eq("Item.itemNum", planted::NUMBER)
            .sum("Item.price")
            .build(),
        QueryId::Q10 => TargetQuery::builder("Q10")
            .relation("PO")
            .relation("Item")
            .filter_eq("PO.invoiceTo", planted::PERSON)
            .filter_eq("PO.billToAddress", planted::COMPANY)
            .count()
            .build(),
    };
    result.expect("workload queries are well-formed")
}

/// All ten workload queries.
#[must_use]
pub fn all_queries() -> Vec<(QueryId, TargetQuery)> {
    QueryId::all().iter().map(|&id| (id, query(id))).collect()
}

/// The queries defined on a given target schema.
#[must_use]
pub fn queries_for(target: TargetSchemaKind) -> Vec<(QueryId, TargetQuery)> {
    all_queries()
        .into_iter()
        .filter(|(id, _)| id.target() == target)
        .collect()
}

/// The Figure 11(d) family: queries with `n` (1–5) selection operators over the Excel `PO`
/// relation, each selection on a different attribute.
pub fn selection_sweep(n: usize) -> CoreResult<TargetQuery> {
    let selections: [(&str, Value); 5] = [
        ("PO.telephone", Value::from(planted::TELEPHONE)),
        ("PO.invoiceTo", Value::from(planted::PERSON)),
        ("PO.company", Value::from(planted::COMPANY)),
        ("PO.deliverToStreet", Value::from(planted::STREET)),
        ("PO.priority", Value::from(planted::PRIORITY)),
    ];
    let n = n.clamp(1, selections.len());
    let mut builder = TargetQuery::builder(format!("sel-{n}")).relation("PO");
    for (attr, value) in selections.iter().take(n) {
        builder = builder.filter_eq(attr, value.clone());
    }
    builder.returning(["PO.orderNum"]).build()
}

/// The Figure 11(e) family: queries with `n` (1–3) Cartesian products — self-joins of the Excel
/// `PO` relation chained on `orderNum`, with one selection to keep the result bounded.
pub fn product_sweep(n: usize) -> CoreResult<TargetQuery> {
    let n = n.clamp(1, 3);
    let mut builder = TargetQuery::builder(format!("prod-{n}"))
        .relation_as("PO", "PO1")
        .filter_eq("PO1.telephone", planted::TELEPHONE);
    for i in 2..=(n + 1) {
        builder = builder
            .relation_as("PO", format!("PO{i}"))
            .join("PO1.orderNum", &format!("PO{i}.orderNum"));
    }
    builder.returning(["PO1.orderNum"]).build()
}

/// The join-heavy family: `n` (1–4) `Item` aliases all equi-joined to one Excel `PO` scan on
/// `orderNum`, with one selective predicate.  Reformulated, these become the wide-fan-out
/// plans the shared-operator DAG runtime exists for: the `PO` and `Item` scans are shared by
/// every join, and the joins themselves are independent DAG nodes the parallel scheduler can
/// run concurrently.
pub fn join_sweep(n: usize) -> CoreResult<TargetQuery> {
    let n = n.clamp(1, 4);
    let mut builder = TargetQuery::builder(format!("join-{n}"))
        .relation("PO")
        .filter_eq("PO.telephone", planted::TELEPHONE);
    for i in 1..=n {
        builder = builder
            .relation_as("Item", format!("Item{i}"))
            .join("PO.orderNum", &format!("Item{i}.orderNum"));
    }
    builder
        .returning(["PO.orderNum", &format!("Item{n}.itemNum")])
        .build()
}

/// The oversized family: `scale:N` — `n` (1–3) *unfiltered* self-joins of the Excel `PO`
/// relation chained on `orderNum`.  Unlike [`product_sweep`] there is no selective predicate,
/// so every intermediate materialises at full source-relation cardinality with rows `n + 1`
/// relations wide: the total bytes a batch of these touches scales with `scale × n`, which is
/// what makes a workload bigger than any fixed `--memory-budget`.  This is the family the
/// spill benchmark and the larger-than-memory CI smoke replay.
pub fn oversized_sweep(n: usize) -> CoreResult<TargetQuery> {
    let n = n.clamp(1, 3);
    let mut builder = TargetQuery::builder(format!("scale-{n}")).relation_as("PO", "PO1");
    for i in 2..=(n + 1) {
        builder = builder
            .relation_as("PO", format!("PO{i}"))
            .join("PO1.orderNum", &format!("PO{i}.orderNum"));
    }
    builder.returning(["PO1.orderNum", "PO1.telephone"]).build()
}

/// The skewed family: `skew:N` — `n` (1–3) `Item` self-joins chained on the Zipf-distributed
/// `quantity` attribute.  Unlike the `orderNum` joins of the other families, `quantity`'s
/// generated values follow Zipf(s=1) over 50 ranks (rank 1 alone holds ~22% of the rows), so a
/// uniform static cardinality estimate mis-sizes every intermediate: the chained self-joins
/// blow up on the head rank while the estimator predicts uniform fan-out.  This is the workload
/// the adaptive loop's observed-cardinality feedback (build-side flips, observed-cost
/// scheduling) exists to fix; one selective anchor predicate keeps the result bounded.
pub fn skewed_sweep(n: usize) -> CoreResult<TargetQuery> {
    let n = n.clamp(1, 3);
    let mut builder = TargetQuery::builder(format!("skew-{n}"))
        .relation_as("Item", "Item1")
        .filter_eq("Item1.itemNum", planted::NUMBER);
    for i in 2..=(n + 1) {
        builder = builder
            .relation_as("Item", format!("Item{i}"))
            .join("Item1.quantity", &format!("Item{i}.quantity"));
    }
    builder
        .returning(["Item1.itemNum", &format!("Item{}.quantity", n + 1)])
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use urm_core::query::QueryOutput;

    #[test]
    fn all_ten_queries_build_and_are_assigned_to_the_right_schema() {
        let all = all_queries();
        assert_eq!(all.len(), 10);
        assert_eq!(queries_for(TargetSchemaKind::Excel).len(), 5);
        assert_eq!(queries_for(TargetSchemaKind::Noris).len(), 2);
        assert_eq!(queries_for(TargetSchemaKind::Paragon).len(), 3);
        for (id, q) in all {
            assert_eq!(q.name(), format!("Q{}", id.number()));
        }
    }

    #[test]
    fn aggregates_match_table_iii() {
        assert!(matches!(query(QueryId::Q5).output(), QueryOutput::Count));
        assert!(matches!(query(QueryId::Q9).output(), QueryOutput::Sum(_)));
        assert!(matches!(query(QueryId::Q10).output(), QueryOutput::Count));
        assert!(matches!(
            query(QueryId::Q1).output(),
            QueryOutput::Tuples(_)
        ));
    }

    #[test]
    fn q4_is_the_default_multi_join_query() {
        let q4 = query(QueryId::Q4);
        assert_eq!(q4.relations().len(), 4);
        assert_eq!(q4.product_count(), 3);
        assert!(q4.predicate_count() >= 4);
    }

    #[test]
    fn selection_sweep_has_requested_operator_count() {
        for n in 1..=5 {
            let q = selection_sweep(n).unwrap();
            assert_eq!(q.predicate_count(), n);
            assert_eq!(q.relations().len(), 1);
        }
        // Out-of-range values are clamped.
        assert_eq!(selection_sweep(0).unwrap().predicate_count(), 1);
        assert_eq!(selection_sweep(9).unwrap().predicate_count(), 5);
    }

    #[test]
    fn product_sweep_has_requested_product_count() {
        for n in 1..=3 {
            let q = product_sweep(n).unwrap();
            assert_eq!(q.product_count(), n);
        }
    }

    #[test]
    fn oversized_sweep_chains_unfiltered_self_joins() {
        for n in 1..=3 {
            let q = oversized_sweep(n).unwrap();
            assert_eq!(q.relations().len(), n + 1);
            // Only the join predicates — nothing selective to shrink intermediates.
            assert_eq!(q.predicate_count(), n);
        }
        assert_eq!(oversized_sweep(0).unwrap().relations().len(), 2);
        assert_eq!(oversized_sweep(9).unwrap().relations().len(), 4);
    }

    #[test]
    fn skewed_sweep_chains_quantity_self_joins() {
        for n in 1..=3 {
            let q = skewed_sweep(n).unwrap();
            assert_eq!(q.relations().len(), n + 1);
            // One anchor predicate plus one skewed join per chained alias.
            assert_eq!(q.predicate_count(), n + 1);
        }
        assert_eq!(skewed_sweep(0).unwrap().relations().len(), 2);
        assert_eq!(skewed_sweep(9).unwrap().relations().len(), 4);
    }

    #[test]
    fn join_sweep_fans_out_n_joins_from_one_po_scan() {
        for n in 1..=4 {
            let q = join_sweep(n).unwrap();
            assert_eq!(q.relations().len(), n + 1);
            // One selective predicate plus one join predicate per Item alias.
            assert_eq!(q.predicate_count(), n + 1);
        }
        assert_eq!(join_sweep(0).unwrap().relations().len(), 2);
        assert_eq!(join_sweep(9).unwrap().relations().len(), 5);
    }
}
