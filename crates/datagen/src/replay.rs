//! Replayable query workloads for the serving layer.
//!
//! The `urm-cli` binary (and the service benchmark) replay a *workload*: an ordered list of
//! target queries drawn from the paper's Table III plus the parameterised sweep families.
//! Workloads are described by a tiny line-oriented text format so experiment scripts can be
//! checked in and replayed verbatim:
//!
//! ```text
//! # one request per line; '#' starts a comment
//! Q1          # Table III query 1
//! Q4 x10      # ten consecutive submissions of Q4
//! sel:3       # selection-sweep query with 3 selections (Figure 11(d))
//! prod:2      # product-sweep query with 2 products (Figure 11(e))
//! join:3      # join-heavy query fanning 3 Item joins out of one PO scan
//! scale:2     # oversized query: 2 unfiltered PO self-joins (spill/memory-budget workloads)
//! skew:2      # 2 Item self-joins on the Zipf-skewed quantity key (adaptive-loop workloads)
//! ```

use crate::scenario::TargetSchemaKind;
use crate::workload::{self, QueryId};
use urm_core::query::TargetQuery;
use urm_core::{CoreError, CoreResult};

/// One request of a workload: a labelled target query plus the schema it addresses.
#[derive(Debug, Clone)]
pub struct WorkloadEntry {
    /// The spec that produced the query (`Q4`, `sel:3`, …).
    pub label: String,
    /// The target schema the query is defined on.
    pub target: TargetSchemaKind,
    /// The query itself.
    pub query: TargetQuery,
}

/// Parses one workload spec (`Q1`–`Q10`, `sel:N`, `prod:N`, `join:N`, `scale:N` or `skew:N`)
/// into an entry.
pub fn parse_spec(spec: &str) -> CoreResult<WorkloadEntry> {
    let spec = spec.trim();
    let sweep = |family: &'static str, n: &str, build: fn(usize) -> CoreResult<_>| {
        let n: usize = n
            .parse()
            .map_err(|_| CoreError::InvalidQuery(format!("bad {family} count in '{spec}'")))?;
        Ok(WorkloadEntry {
            label: spec.to_string(),
            target: TargetSchemaKind::Excel,
            query: build(n)?,
        })
    };
    if let Some(n) = spec.strip_prefix("sel:") {
        return sweep("selection", n, workload::selection_sweep);
    }
    if let Some(n) = spec.strip_prefix("prod:") {
        return sweep("product", n, workload::product_sweep);
    }
    if let Some(n) = spec.strip_prefix("join:") {
        return sweep("join", n, workload::join_sweep);
    }
    if let Some(n) = spec.strip_prefix("scale:") {
        return sweep("oversized", n, workload::oversized_sweep);
    }
    if let Some(n) = spec.strip_prefix("skew:") {
        return sweep("skewed", n, workload::skewed_sweep);
    }
    let id = QueryId::all()
        .into_iter()
        .find(|id| format!("Q{}", id.number()).eq_ignore_ascii_case(spec))
        .ok_or_else(|| {
            CoreError::InvalidQuery(format!(
                "unknown workload spec '{spec}' (expected Q1–Q10, sel:N, prod:N, join:N, \
                 scale:N or skew:N)"
            ))
        })?;
    Ok(WorkloadEntry {
        label: format!("Q{}", id.number()),
        target: id.target(),
        query: workload::query(id),
    })
}

/// Parses a workload file: one spec per line, optional ` xN` repeat suffix, `#` comments.
pub fn parse_workload(text: &str) -> CoreResult<Vec<WorkloadEntry>> {
    let mut entries = Vec::new();
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (spec, repeat) = match line.rsplit_once(char::is_whitespace) {
            Some((head, last)) if last.starts_with(['x', 'X']) => {
                let count: usize = last[1..].parse().map_err(|_| {
                    CoreError::InvalidQuery(format!("bad repeat count in '{line}'"))
                })?;
                (head.trim(), count)
            }
            _ => (line, 1),
        };
        let entry = parse_spec(spec)?;
        entries.extend(std::iter::repeat_n(entry, repeat));
    }
    Ok(entries)
}

/// A deterministic synthetic workload of `n` requests cycling the Table III queries, restricted
/// to `target` when given (a single service epoch serves one mapping set, hence one target
/// schema).  Repeats are intentional: real query traffic repeats, which is what the service's
/// answer cache exploits.
pub fn synthetic_workload(n: usize, target: Option<TargetSchemaKind>) -> Vec<WorkloadEntry> {
    let pool: Vec<QueryId> = QueryId::all()
        .into_iter()
        .filter(|id| target.is_none_or(|t| id.target() == t))
        .collect();
    (0..n)
        .map(|i| {
            let id = pool[i % pool.len()];
            WorkloadEntry {
                label: format!("Q{}", id.number()),
                target: id.target(),
                query: workload::query(id),
            }
        })
        .collect()
}

/// A deterministic join-heavy workload of `n` requests (all on the Excel schema): the
/// multi-join Table III queries (Q3, Q4) interleaved with the `join:N` fan-out family.  This is
/// the batch shape that exercises DAG fan-out — every request shares the `PO`/`Item` scans
/// while contributing independent join nodes for the parallel scheduler.
#[must_use]
pub fn join_heavy_workload(n: usize) -> Vec<WorkloadEntry> {
    let specs = ["Q3", "Q4", "join:2", "join:3", "Q4", "join:4"];
    (0..n)
        .map(|i| parse_spec(specs[i % specs.len()]).expect("join-heavy specs are well-formed"))
        .collect()
}

/// A deterministic *oversized* workload of `n` requests (all on the Excel schema): the
/// unfiltered `scale:N` self-join family interleaved with the join-heavy Table III queries.
/// Replayed under `urm-cli --memory-budget`, the total bytes these requests materialise dwarf
/// any reasonable budget — the workload the spill path (grace hash joins, spill-backed pins)
/// exists for.
#[must_use]
pub fn oversized_workload(n: usize) -> Vec<WorkloadEntry> {
    let specs = ["scale:2", "Q4", "scale:3", "scale:2", "Q3", "scale:3"];
    (0..n)
        .map(|i| parse_spec(specs[i % specs.len()]).expect("oversized specs are well-formed"))
        .collect()
}

/// A deterministic *skewed* workload of `n` requests (all on the Excel schema): the `skew:N`
/// family — `Item` self-joins on the Zipf-distributed `quantity` key — interleaved with the
/// multi-join Table III queries.  The head rank of the skewed key carries ~22% of the rows, so
/// static uniform cardinality estimates mis-size every chained intermediate; replayed twice
/// against one epoch, the second pass is where the adaptive loop's observed cardinalities
/// should pay off (`urm-cli --adaptive on|off` A/Bs the two).
#[must_use]
pub fn skewed_workload(n: usize) -> Vec<WorkloadEntry> {
    let specs = ["skew:2", "Q4", "skew:3", "skew:1", "Q3", "skew:2"];
    (0..n)
        .map(|i| parse_spec(specs[i % specs.len()]).expect("skewed specs are well-formed"))
        .collect()
}

/// A deterministic top-k candidate workload of `n` requests: the tuple-returning Excel queries
/// whose answers have many distinct candidates, the shape the probabilistic top-k algorithm
/// (Section VII) prunes.  Entries are plain target queries — callers choose `k` when invoking
/// [`top_k`](urm_core::top_k) — so the same batch replays under exact and top-k evaluation.
#[must_use]
pub fn top_k_workload(n: usize) -> Vec<WorkloadEntry> {
    let specs = ["Q1", "join:2", "Q2", "sel:2", "Q3"];
    (0..n)
        .map(|i| parse_spec(specs[i % specs.len()]).expect("top-k specs are well-formed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_table_iii_and_sweep_specs() {
        assert_eq!(parse_spec("Q4").unwrap().label, "Q4");
        assert_eq!(parse_spec("q10").unwrap().target, TargetSchemaKind::Paragon);
        assert_eq!(parse_spec("sel:3").unwrap().query.predicate_count(), 3);
        assert_eq!(parse_spec("prod:2").unwrap().query.product_count(), 2);
        assert_eq!(parse_spec("join:3").unwrap().query.relations().len(), 4);
        assert_eq!(parse_spec("scale:2").unwrap().query.relations().len(), 3);
        assert_eq!(parse_spec("skew:2").unwrap().query.relations().len(), 3);
        assert!(parse_spec("Q11").is_err());
        assert!(parse_spec("sel:x").is_err());
        assert!(parse_spec("join:x").is_err());
        assert!(parse_spec("scale:x").is_err());
        assert!(parse_spec("skew:x").is_err());
    }

    #[test]
    fn skewed_workload_is_excel_only_and_cycles() {
        let entries = skewed_workload(8);
        assert_eq!(entries.len(), 8);
        assert!(entries.iter().all(|e| e.target == TargetSchemaKind::Excel));
        assert_eq!(entries[0].label, "skew:2");
        assert_eq!(entries[0].label, entries[6].label);
    }

    #[test]
    fn oversized_workload_is_excel_only_and_cycles() {
        let entries = oversized_workload(8);
        assert_eq!(entries.len(), 8);
        assert!(entries.iter().all(|e| e.target == TargetSchemaKind::Excel));
        assert_eq!(entries[0].label, "scale:2");
        assert_eq!(entries[0].label, entries[6].label);
    }

    #[test]
    fn join_heavy_and_topk_workloads_are_excel_only_and_cycle() {
        let joins = join_heavy_workload(8);
        assert_eq!(joins.len(), 8);
        assert!(joins.iter().all(|e| e.target == TargetSchemaKind::Excel));
        assert_eq!(joins[0].label, joins[6].label);
        let topk = top_k_workload(7);
        assert_eq!(topk.len(), 7);
        assert!(topk.iter().all(|e| e.target == TargetSchemaKind::Excel));
        assert_eq!(topk[0].label, topk[5].label);
    }

    #[test]
    fn parses_files_with_comments_and_repeats() {
        let text = "# header\nQ1\nQ4 x3\n\nsel:2   # inline comment\n";
        let entries = parse_workload(text).unwrap();
        let labels: Vec<&str> = entries.iter().map(|e| e.label.as_str()).collect();
        assert_eq!(labels, ["Q1", "Q4", "Q4", "Q4", "sel:2"]);
    }

    #[test]
    fn rejects_bad_repeat_counts() {
        assert!(parse_workload("Q1 xq").is_err());
    }

    #[test]
    fn synthetic_workload_cycles_and_filters() {
        let all = synthetic_workload(12, None);
        assert_eq!(all.len(), 12);
        assert_eq!(all[0].label, "Q1");
        assert_eq!(all[10].label, "Q1");
        let excel = synthetic_workload(7, Some(TargetSchemaKind::Excel));
        assert!(excel.iter().all(|e| e.target == TargetSchemaKind::Excel));
        // 5 Excel queries, so entry 5 cycles back to Q1.
        assert_eq!(excel[5].label, excel[0].label);
    }
}
