//! A deterministic attribute-name similarity scorer standing in for COMA++.
//!
//! COMA++ combines several name- and structure-based matchers plus a synonym dictionary to
//! score attribute pairs.  The scorer here reproduces the behaviour that matters for the paper:
//! a dense-enough set of scored correspondences in which each target attribute typically has a
//! handful of plausible source candidates with close scores (phones, addresses, prices, order
//! numbers), so that the top-h bipartite mappings overlap heavily yet differ on exactly those
//! ambiguous attributes.
//!
//! The score of a pair of attribute names is a weighted mix of token overlap (after camel-case
//! splitting and synonym normalisation) and character-trigram overlap.

use std::collections::BTreeSet;
use urm_matching::{MatchingResult, SchemaDef, SimilarityMatrix};

/// Splits a `camelCase`/`snake_case` identifier into lower-case tokens.
#[must_use]
pub fn tokenize(name: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in name.chars() {
        if ch == '_' || ch == '-' || ch == ' ' || ch == '.' {
            if !current.is_empty() {
                tokens.push(std::mem::take(&mut current));
            }
        } else if ch.is_uppercase() && !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
            current.push(ch.to_ascii_lowercase());
        } else {
            current.push(ch.to_ascii_lowercase());
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Maps a token to its canonical concept (a tiny synonym dictionary, as COMA++ uses).
#[must_use]
pub fn canonical(token: &str) -> &str {
    match token {
        "telephone" | "phone" | "tel" | "mobile" | "fax" => "phone",
        "address" | "addr" | "street" | "city" => "address",
        "price" | "amount" | "cost" => "price",
        "num" | "number" | "no" | "id" | "ref" => "num",
        "item" | "part" | "product" => "item",
        "order" | "po" | "purchase" => "order",
        "customer" | "cust" | "client" => "customer",
        "supplier" | "supp" | "vendor" => "supplier",
        "name" | "title" => "name",
        "deliver" | "ship" | "delivery" => "deliver",
        "invoice" | "bill" => "bill",
        "nation" | "country" => "nation",
        "qty" | "quantity" => "quantity",
        "status" | "state" => "status",
        "priority" | "urgency" => "priority",
        other => other,
    }
}

fn token_set(name: &str) -> BTreeSet<String> {
    tokenize(name)
        .iter()
        .map(|t| canonical(t).to_string())
        .collect()
}

fn trigrams(name: &str) -> BTreeSet<String> {
    let lower: Vec<char> = name.to_ascii_lowercase().chars().collect();
    if lower.len() < 3 {
        return std::iter::once(lower.iter().collect::<String>()).collect();
    }
    lower.windows(3).map(|w| w.iter().collect()).collect()
}

fn jaccard<T: Ord>(a: &BTreeSet<T>, b: &BTreeSet<T>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count() as f64;
    let union = a.union(b).count() as f64;
    inter / union
}

fn dice<T: Ord>(a: &BTreeSet<T>, b: &BTreeSet<T>) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count() as f64;
    2.0 * inter / (a.len() + b.len()) as f64
}

/// Similarity between two attribute names, in `[0, 1]`.
#[must_use]
pub fn name_similarity(source: &str, target: &str) -> f64 {
    if source.eq_ignore_ascii_case(target) {
        return 1.0;
    }
    let token_score = jaccard(&token_set(source), &token_set(target));
    let trigram_score = dice(&trigrams(source), &trigrams(target));
    0.65 * token_score + 0.35 * trigram_score
}

/// Default minimum similarity for a correspondence to be reported (the matcher's cut-off).
pub const DEFAULT_THRESHOLD: f64 = 0.30;

/// Builds the full similarity matrix between a source and a target schema, keeping only pairs
/// scoring at least `threshold`.
pub fn score_schemas(
    source: &SchemaDef,
    target: &SchemaDef,
    threshold: f64,
) -> MatchingResult<SimilarityMatrix> {
    let mut sim = SimilarityMatrix::new(source, target);
    for s in source.all_attributes() {
        for t in target.all_attributes() {
            let score = name_similarity(&s.attr, &t.attr);
            if score >= threshold {
                sim.try_set(&s, &t, score)?;
            }
        }
    }
    Ok(sim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{source::source_schema_def, targets};
    use urm_storage::AttrRef;

    #[test]
    fn tokenizer_splits_camel_case_and_separators() {
        assert_eq!(tokenize("billToAddress"), vec!["bill", "to", "address"]);
        assert_eq!(tokenize("order_num"), vec!["order", "num"]);
        assert_eq!(tokenize("telephone"), vec!["telephone"]);
    }

    #[test]
    fn identical_names_score_one() {
        assert_eq!(name_similarity("telephone", "telephone"), 1.0);
        assert_eq!(name_similarity("OrderNum", "ordernum"), 1.0);
    }

    #[test]
    fn synonym_families_create_ambiguity() {
        // The target attribute `telephone` must have several plausible source candidates with
        // the exact name ranked first.
        let exact = name_similarity("telephone", "telephone");
        let home = name_similarity("homePhone", "telephone");
        let supp = name_similarity("suppPhone", "telephone");
        let unrelated = name_similarity("brand", "telephone");
        assert!(exact > home && home > 0.3, "home={home}");
        assert!(supp > 0.3, "supp={supp}");
        assert!(unrelated < 0.3, "unrelated={unrelated}");
    }

    #[test]
    fn price_and_order_number_families() {
        assert!(name_similarity("unitPrice", "price") > 0.3);
        assert!(name_similarity("retailPrice", "price") > 0.3);
        assert!(name_similarity("orderNum", "orderNum") == 1.0);
        assert!(name_similarity("itemOrderNum", "orderNum") > 0.3);
        assert!(name_similarity("shipOrderNum", "orderNum") > 0.3);
    }

    #[test]
    fn scoring_tpch_vs_excel_produces_a_rich_matrix() {
        let sim =
            score_schemas(&source_schema_def(), &targets::excel(), DEFAULT_THRESHOLD).unwrap();
        // COMA++ reported 34 correspondences for Excel; our scorer should find a comparable
        // (same order of magnitude) number of scored pairs, with ambiguity on the workload
        // attributes.
        assert!(sim.positive_entries() >= 30, "{}", sim.positive_entries());
        let telephone = AttrRef::new("PO", "telephone");
        let candidates: usize = sim
            .source_attrs()
            .iter()
            .filter(|s| sim.get(s, &telephone).unwrap() > 0.0)
            .count();
        assert!(
            candidates >= 2,
            "telephone needs ambiguity, got {candidates}"
        );
    }

    #[test]
    fn thresholds_filter_low_scores() {
        let strict = score_schemas(&source_schema_def(), &targets::excel(), 0.9).unwrap();
        let loose = score_schemas(&source_schema_def(), &targets::excel(), 0.3).unwrap();
        assert!(strict.positive_entries() < loose.positive_entries());
    }
}
