//! End-to-end observability tests: metric-surface coverage, Prometheus exposition
//! well-formedness, X-Trace-Id propagation and the span tree of a traced request.
//!
//! The coverage test is driven by [`ServiceMetrics::fields`] — the same canonical enumeration
//! the server renders from — so adding a metric without surfacing it on *both* `GET /metrics`
//! and `GET /metrics.json` fails here.

use std::time::Duration;
use urm_datagen::scenario::{Scenario, ScenarioConfig, TargetSchemaKind};
use urm_server::{AdmissionConfig, AdmissionController, HttpClient, Json, UrmServer};
use urm_service::{QueryService, ServiceConfig, ServiceMetrics};

const CLIENT_TIMEOUT: Duration = Duration::from_secs(20);

fn start_server() -> UrmServer {
    let scenario = Scenario::generate(&ScenarioConfig {
        target: TargetSchemaKind::Excel,
        scale: 4,
        mappings: 6,
        seed: 7,
    })
    .expect("scenario generation");
    let service = QueryService::new(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    let epoch = service.register_epoch(scenario.catalog, scenario.mappings);
    UrmServer::start(
        "127.0.0.1:0",
        service,
        vec![(TargetSchemaKind::Excel, epoch)],
        AdmissionController::new(AdmissionConfig::default()),
    )
    .expect("server start")
}

fn connect(server: &UrmServer) -> HttpClient {
    HttpClient::connect(server.addr(), CLIENT_TIMEOUT).expect("connect")
}

/// A tiny Prometheus text-exposition parser: `# TYPE` declarations plus `name{labels} value`
/// samples, enough to verify the contract a real scraper relies on.
struct Exposition {
    /// `(metric name, declared type)` in order of appearance.
    types: Vec<(String, String)>,
    /// `(series including labels, value)` in order of appearance.
    samples: Vec<(String, f64)>,
}

fn parse_exposition(body: &str) -> Exposition {
    let mut types = Vec::new();
    let mut samples = Vec::new();
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let name = parts.next().expect("TYPE name").to_string();
            let kind = parts.next().expect("TYPE kind").to_string();
            types.push((name, kind));
            continue;
        }
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("sample line");
        let value: f64 = value.parse().unwrap_or_else(|_| {
            panic!("non-numeric sample value in line {line:?}");
        });
        samples.push((series.to_string(), value));
    }
    Exposition { types, samples }
}

impl Exposition {
    fn value(&self, series: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|(s, _)| s == series)
            .map(|(_, v)| *v)
    }

    /// The `(le, cumulative)` bucket series of one labelled histogram, in exposition order
    /// (`+Inf` excluded — it is checked against `_count` separately).
    fn buckets(&self, family: &str, label: &str, value: &str) -> Vec<(u64, u64)> {
        let prefix = format!("{family}_bucket{{{label}=\"{value}\",le=\"");
        self.samples
            .iter()
            .filter_map(|(series, count)| {
                let le = series.strip_prefix(&prefix)?.strip_suffix("\"}")?;
                if le == "+Inf" {
                    return None;
                }
                Some((le.parse().expect("numeric le"), *count as u64))
            })
            .collect()
    }
}

/// Asserts one labelled histogram series is a well-formed Prometheus histogram: ascending
/// `le` bounds, monotone cumulative counts, and `+Inf` / `_count` / `_sum` all consistent.
fn assert_histogram(exp: &Exposition, family: &str, label: &str, value: &str) {
    let buckets = exp.buckets(family, label, value);
    for window in buckets.windows(2) {
        assert!(window[0].0 < window[1].0, "le bounds must ascend");
        assert!(
            window[0].1 <= window[1].1,
            "cumulative bucket counts must be monotone"
        );
    }
    let count = exp
        .value(&format!("{family}_count{{{label}=\"{value}\"}}"))
        .expect("_count sample") as u64;
    let inf = exp
        .value(&format!(
            "{family}_bucket{{{label}=\"{value}\",le=\"+Inf\"}}"
        ))
        .expect("+Inf bucket") as u64;
    assert_eq!(inf, count, "+Inf bucket must equal _count");
    assert!(
        count == 0 || !buckets.is_empty(),
        "{family}{{{label}={value}}} recorded samples but exposes no finite bucket"
    );
    if let Some(last) = buckets.last() {
        assert!(last.1 <= count, "last finite bucket exceeds _count");
    }
    let sum = exp
        .value(&format!("{family}_sum{{{label}=\"{value}\"}}"))
        .expect("_sum sample");
    assert!(sum >= 0.0);
    if count == 0 {
        assert_eq!(sum, 0.0, "empty histogram must have zero _sum");
    }
}

#[test]
fn every_service_metric_reaches_both_surfaces() {
    let server = start_server();
    let mut client = connect(&server);
    // Put some work through so counters are non-trivial.
    let response = client
        .request("POST", "/batch", Some("{\"specs\": [\"Q1\", \"join:2\"]}"))
        .unwrap();
    assert_eq!(response.status, 200);

    let fields = ServiceMetrics::default().fields();

    // JSON surface: every canonical field name is a key.
    let json = client.request("GET", "/metrics.json", None).unwrap();
    assert_eq!(json.status, 200);
    let doc = Json::parse(&json.body).unwrap();
    for (name, _, _) in &fields {
        assert!(
            doc.get(name).and_then(Json::as_f64).is_some(),
            "/metrics.json is missing {name}"
        );
    }

    // Prometheus surface: every field is a `urm_<name>` sample with a matching TYPE line.
    let prom = client.request("GET", "/metrics", None).unwrap();
    assert_eq!(prom.status, 200);
    assert!(prom
        .header("content-type")
        .is_some_and(|t| t.starts_with("text/plain")));
    let exp = parse_exposition(&prom.body);
    for (name, _, _) in &fields {
        let prom_name = format!("urm_{name}");
        assert!(
            exp.value(&prom_name).is_some(),
            "/metrics is missing {prom_name}"
        );
        assert!(
            exp.types.iter().any(|(n, _)| *n == prom_name),
            "{prom_name} has no # TYPE declaration"
        );
    }
    // The two surfaces must agree that work happened.
    assert!(exp.value("urm_batches").unwrap() >= 1.0);
    assert!(doc.get("batches").and_then(Json::as_f64).unwrap() >= 1.0);

    // Histogram families: every stage and endpoint series is well-formed, and the exercised
    // ones are non-empty.
    for stage in ["rewrite", "plan", "execute", "aggregate", "query", "batch"] {
        assert_histogram(&exp, "urm_stage_duration_ns", "stage", stage);
    }
    for endpoint in ["query", "batch"] {
        assert_histogram(&exp, "urm_http_request_duration_ns", "endpoint", endpoint);
    }
    assert!(
        exp.value("urm_stage_duration_ns_count{stage=\"batch\"}")
            .unwrap()
            >= 1.0,
        "the served batch must have recorded a batch-stage latency"
    );
    assert!(
        exp.value("urm_http_request_duration_ns_count{endpoint=\"batch\"}")
            .unwrap()
            >= 1.0,
        "the served request must have recorded an endpoint latency"
    );
    server.shutdown();
}

#[test]
fn traced_requests_echo_their_id_and_record_a_well_formed_span_tree() {
    let server = start_server();
    let mut client = connect(&server);

    // A fresh (uncached) query carrying a trace id: the response echoes the id back.
    let traced = client
        .request_with_headers(
            "POST",
            "/query",
            &[("x-trace-id", "test-trace-1")],
            Some("{\"spec\": \"join:2\"}"),
        )
        .unwrap();
    assert_eq!(traced.status, 200);
    assert_eq!(traced.header("x-trace-id"), Some("test-trace-1"));

    // The whole DAG of that batch executed under the trace: compare span coverage against
    // the service counter (this was the only batch, so the totals are the batch's own).
    let metrics = client.request("GET", "/metrics.json", None).unwrap();
    let nodes_executed = Json::parse(&metrics.body)
        .unwrap()
        .get("dag_nodes_executed")
        .and_then(Json::as_f64)
        .unwrap() as usize;

    let debug = client.request("GET", "/debug/traces", None).unwrap();
    assert_eq!(debug.status, 200);
    let doc = Json::parse(&debug.body).unwrap();
    let traces = doc.get("traces").and_then(Json::as_arr).unwrap();
    let trace = traces
        .iter()
        .find(|t| t.get("id").and_then(Json::as_str) == Some("test-trace-1"))
        .expect("the traced request must appear in /debug/traces");
    let spans = trace.get("spans").and_then(Json::as_arr).unwrap();
    assert!(!spans.is_empty());

    let field = |span: &Json, name: &str| span.get(name).and_then(Json::as_f64).unwrap() as u64;
    let name = |span: &Json| span.get("name").and_then(Json::as_str).unwrap().to_string();
    let ids: Vec<u64> = spans.iter().map(|s| field(s, "span")).collect();
    let mut unique = ids.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), ids.len(), "span ids must be unique");

    // Every parent is either the root (0) or another span of the same trace.
    for span in spans {
        let parent = field(span, "parent");
        assert!(
            parent == 0 || ids.contains(&parent),
            "span {} has unknown parent {parent}",
            field(span, "span")
        );
    }

    // The stage spans hang off the batch span and do not overlap (they are sequential).
    let batch = spans
        .iter()
        .find(|s| name(s) == "batch")
        .expect("batch root span");
    let batch_id = field(batch, "span");
    assert_eq!(field(batch, "parent"), 0);
    let mut stages: Vec<(u64, u64)> = spans
        .iter()
        .filter(|s| {
            matches!(
                name(s).as_str(),
                "rewrite" | "optimize_bind" | "execute" | "aggregate"
            )
        })
        .map(|s| {
            assert_eq!(
                field(s, "parent"),
                batch_id,
                "stage span {} must parent to the batch span",
                name(s)
            );
            (field(s, "start_ns"), field(s, "dur_ns"))
        })
        .collect();
    assert!(stages.len() >= 4, "expected all four stage spans");
    stages.sort_unstable();
    for window in stages.windows(2) {
        assert!(
            window[0].0 + window[0].1 <= window[1].0,
            "sibling stage spans must not overlap"
        );
    }

    // Every executed DAG node produced exactly one `node` span, each tagged and parented
    // into the tree (their ancestors reach the batch span through `execute`).
    let node_spans: Vec<&Json> = spans.iter().filter(|s| name(s) == "node").collect();
    assert_eq!(
        node_spans.len(),
        nodes_executed,
        "every executed DAG node must be covered by a span"
    );
    for span in &node_spans {
        let tags = span.get("tags").expect("node span tags");
        assert!(tags.get("node").and_then(Json::as_f64).is_some());
        assert!(tags.get("shared_by").and_then(Json::as_f64).unwrap() >= 1.0);
        assert!(field(span, "parent") != 0, "node spans must not be roots");
    }
    // The admission wait was traced too.
    assert!(spans.iter().any(|s| name(s) == "admission"));
    server.shutdown();
}
