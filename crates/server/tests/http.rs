//! End-to-end HTTP tests: a real server on a loopback port, real sockets, hostile inputs.
//!
//! Covers the front-door contract: happy paths for every endpoint, malformed request lines,
//! oversized bodies, truncated JSON, slow-loris partial headers hitting the read timeout,
//! concurrent clients receiving byte-identical answers, admission rejections (queue full and
//! per-client throttle) and the draining shutdown.

use std::time::Duration;
use urm_datagen::scenario::{Scenario, ScenarioConfig, TargetSchemaKind};
use urm_server::{AdmissionConfig, AdmissionController, HttpClient, Json, UrmServer};
use urm_service::{QueryService, ServiceConfig};

const CLIENT_TIMEOUT: Duration = Duration::from_secs(20);

/// A small Excel scenario served on an OS-assigned loopback port.
fn start_server(admission: AdmissionConfig) -> UrmServer {
    let scenario = Scenario::generate(&ScenarioConfig {
        target: TargetSchemaKind::Excel,
        scale: 4,
        mappings: 6,
        seed: 7,
    })
    .expect("scenario generation");
    let service = QueryService::new(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    let epoch = service.register_epoch(scenario.catalog, scenario.mappings);
    UrmServer::start(
        "127.0.0.1:0",
        service,
        vec![(TargetSchemaKind::Excel, epoch)],
        AdmissionController::new(admission),
    )
    .expect("server start")
}

fn connect(server: &UrmServer) -> HttpClient {
    HttpClient::connect(server.addr(), CLIENT_TIMEOUT).expect("connect")
}

#[test]
fn healthz_metrics_query_and_batch_round_trip() {
    let server = start_server(AdmissionConfig::default());
    let mut client = connect(&server);

    let health = client.request("GET", "/healthz", None).unwrap();
    assert_eq!(health.status, 200);
    let doc = Json::parse(&health.body).unwrap();
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(doc.get("epochs").and_then(Json::as_arr).unwrap().len(), 1);

    // One query, on the same keep-alive connection.
    let one = client
        .request("POST", "/query", Some("{\"spec\": \"Q1\"}"))
        .unwrap();
    assert_eq!(one.status, 200);
    let doc = Json::parse(&one.body).unwrap();
    let answer = doc.get("answer").expect("answer object");
    assert_eq!(answer.get("label").and_then(Json::as_str), Some("Q1"));
    assert!(answer
        .get("empty_probability")
        .and_then(Json::as_f64)
        .is_some());
    assert_eq!(
        doc.get("served_from").and_then(Json::as_str),
        Some("evaluated")
    );

    // A batch; its chunked body reassembles into one JSON document.
    let batch = client
        .request(
            "POST",
            "/batch",
            Some("{\"specs\": [\"Q1\", \"Q2\", \"join:2\"]}"),
        )
        .unwrap();
    assert_eq!(batch.status, 200);
    assert_eq!(batch.header("transfer-encoding"), Some("chunked"));
    let doc = Json::parse(&batch.body).unwrap();
    let answers = doc.get("answers").and_then(Json::as_arr).unwrap();
    assert_eq!(answers.len(), 3);
    assert_eq!(answers[0].get("label").and_then(Json::as_str), Some("Q1"));

    // The same query again is an answer-cache hit, with the identical answer rendering.
    let two = client
        .request("POST", "/query", Some("{\"spec\": \"Q1\"}"))
        .unwrap();
    let redoc = Json::parse(&two.body).unwrap();
    assert_eq!(
        redoc.get("served_from").and_then(Json::as_str),
        Some("answer-cache")
    );
    assert_eq!(
        redoc.get("answer").unwrap().to_string(),
        doc.get("answers").and_then(Json::as_arr).unwrap()[0].to_string()
    );

    // The JSON snapshot moved to /metrics.json (GET /metrics is Prometheus text now).
    let metrics = client.request("GET", "/metrics.json", None).unwrap();
    assert_eq!(metrics.status, 200);
    let doc = Json::parse(&metrics.body).unwrap();
    assert!(doc.get("queries_submitted").and_then(Json::as_f64).unwrap() >= 5.0);
    assert!(doc.get("answer_cache_hits").and_then(Json::as_f64).unwrap() >= 1.0);
    assert_eq!(doc.get("in_flight_units").and_then(Json::as_f64), Some(0.0));
    assert!(doc.get("observed_nodes").and_then(Json::as_f64).is_some());
    assert!(doc.get("reordered_joins").and_then(Json::as_f64).is_some());
    // Legacy millisecond keys survive alongside the normalised *_ns fields.
    assert!(doc.get("batch_time_ms").and_then(Json::as_f64).is_some());
    assert!(doc.get("batch_time_ns").and_then(Json::as_f64).is_some());
    server.shutdown();
}

#[test]
fn unknown_paths_methods_and_unserved_targets_are_refused() {
    let server = start_server(AdmissionConfig::default());
    let mut client = connect(&server);
    assert_eq!(client.request("GET", "/nope", None).unwrap().status, 404);
    assert_eq!(
        client.request("DELETE", "/query", None).unwrap().status,
        405
    );
    // Q6 targets the Noris schema, which this server does not serve.
    let refused = client
        .request("POST", "/query", Some("{\"spec\": \"Q6\"}"))
        .unwrap();
    assert_eq!(refused.status, 400);
    assert!(refused.body.contains("not served"));
    server.shutdown();
}

#[test]
fn malformed_request_lines_get_400() {
    let server = start_server(AdmissionConfig::default());
    for raw in [
        "GARBAGE\r\n\r\n",
        "GET nopath HTTP/1.1\r\n\r\n",
        "GET /healthz SMTP/1.0\r\n\r\n",
        "POST /query HTTP/1.1\r\nno-colon-header\r\n\r\n",
        "POST /query HTTP/1.1\r\ncontent-length: banana\r\n\r\n",
    ] {
        let mut client = connect(&server);
        let response = client.send_raw(raw.as_bytes()).expect(raw);
        assert_eq!(response.status, 400, "request: {raw:?}");
    }
    server.shutdown();
}

#[test]
fn oversized_bodies_get_413_before_the_body_is_read() {
    let server = start_server(AdmissionConfig {
        max_body_bytes: 64,
        ..AdmissionConfig::default()
    });
    let mut client = connect(&server);
    // Only the head is sent: the 413 must arrive without the server waiting for the body.
    let response = client
        .send_raw(b"POST /query HTTP/1.1\r\ncontent-length: 100000\r\n\r\n")
        .unwrap();
    assert_eq!(response.status, 413);
    assert!(response.body.contains("100000"));
    server.shutdown();
}

#[test]
fn truncated_and_invalid_json_bodies_get_400() {
    let server = start_server(AdmissionConfig::default());
    for body in [
        "{\"spec\": \"Q1\"",   // truncated
        "{\"spec\": 42}",      // wrong type
        "{\"nope\": \"Q1\"}",  // wrong key
        "{\"spec\": \"Q99\"}", // unknown spec
        "not json at all",     // not JSON
        "\u{fffd}",            // valid UTF-8, still not JSON
    ] {
        let mut client = connect(&server);
        let response = client.request("POST", "/query", Some(body)).unwrap();
        assert_eq!(response.status, 400, "body: {body:?}");
    }
    // Batch-shaped errors.
    let mut client = connect(&server);
    let response = client
        .request("POST", "/batch", Some("{\"specs\": []}"))
        .unwrap();
    assert_eq!(response.status, 400);
    server.shutdown();
}

#[test]
fn slow_loris_partial_headers_hit_the_read_timeout() {
    let server = start_server(AdmissionConfig {
        read_timeout: Duration::from_millis(200),
        ..AdmissionConfig::default()
    });
    let mut client = connect(&server);
    // Send half a request head and stall; the server must give up on us, not hang.
    let started = std::time::Instant::now();
    let response = client
        .send_raw(b"POST /query HTTP/1.1\r\ncontent-le")
        .unwrap();
    assert_eq!(response.status, 408);
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "server held a slow-loris connection for {:?}",
        started.elapsed()
    );
    server.shutdown();
}

#[test]
fn concurrent_clients_get_byte_identical_answers() {
    let server = start_server(AdmissionConfig::default());
    let body = "{\"specs\": [\"Q1\", \"Q2\", \"Q3\", \"sel:2\", \"join:2\"]}";

    // Sequential baseline first, on its own connection.
    let baseline = connect(&server)
        .request("POST", "/batch", Some(body))
        .unwrap();
    assert_eq!(baseline.status, 200);

    // Eight concurrent clients replaying the same batch must all get the same bytes —
    // regardless of batching, dedup, answer-cache state or scheduling.
    let addr = server.addr();
    let bodies: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = HttpClient::connect(addr, CLIENT_TIMEOUT).unwrap();
                    let response = client.request("POST", "/batch", Some(body)).unwrap();
                    assert_eq!(response.status, 200);
                    response.body
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for got in &bodies {
        assert_eq!(got, &baseline.body);
    }
    server.shutdown();
}

#[test]
fn full_admission_queue_gets_429_with_retry_after() {
    let server = start_server(AdmissionConfig {
        queue_capacity: 0,
        retry_after_secs: 3,
        ..AdmissionConfig::default()
    });
    let mut client = connect(&server);
    let response = client
        .request("POST", "/query", Some("{\"spec\": \"Q1\"}"))
        .unwrap();
    assert_eq!(response.status, 429);
    assert_eq!(response.header("retry-after"), Some("3"));
    assert!(response.body.contains("queue full"));
    server.shutdown();
}

#[test]
fn dry_token_bucket_gets_429_and_refills() {
    let server = start_server(AdmissionConfig {
        burst: 1.0,
        refill_per_sec: 50.0,
        ..AdmissionConfig::default()
    });
    let mut client = connect(&server);
    let first = client
        .request("POST", "/query", Some("{\"spec\": \"Q1\"}"))
        .unwrap();
    assert_eq!(first.status, 200);
    // The bucket is dry (or nearly): a burst of requests must hit 429 at least once.
    let mut throttled = false;
    for _ in 0..20 {
        let response = client
            .request("POST", "/query", Some("{\"spec\": \"Q1\"}"))
            .unwrap();
        match response.status {
            429 => {
                assert_eq!(response.header("retry-after"), Some("1"));
                throttled = true;
                break;
            }
            200 => continue,
            other => panic!("unexpected status {other}"),
        }
    }
    assert!(
        throttled,
        "a 1-token bucket never throttled 20 rapid queries"
    );
    // And the refill lets the same client back in.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let response = client
            .request("POST", "/query", Some("{\"spec\": \"Q1\"}"))
            .unwrap();
        if response.status == 200 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "bucket never refilled"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    server.shutdown();
}

#[test]
fn shutdown_drains_and_closes_the_listener() {
    let server = start_server(AdmissionConfig::default());
    let addr = server.addr();
    let mut client = connect(&server);
    let response = client
        .request("POST", "/query", Some("{\"spec\": \"Q1\"}"))
        .unwrap();
    assert_eq!(response.status, 200);
    server.shutdown();
    // The listener is gone: new connections are refused outright or die on first use.
    let refused = match HttpClient::connect(addr, Duration::from_millis(500)) {
        Err(_) => true,
        Ok(mut client) => client.request("GET", "/healthz", None).is_err(),
    };
    assert!(refused, "listener still serving after shutdown");
}
