//! A minimal blocking HTTP/1.1 client for the server's own tests, the open-loop benchmark and
//! the CI smoke script.  Speaks exactly the dialect the server emits: fixed-length *and*
//! chunked response bodies, keep-alive connections.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One response.
#[derive(Debug)]
pub struct HttpResponse {
    /// The status code.
    pub status: u16,
    /// Headers, lowercased names.
    pub headers: Vec<(String, String)>,
    /// The decoded body (chunked bodies are reassembled).
    pub body: String,
}

impl HttpResponse {
    /// The first header with this (lowercase) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A keep-alive connection to the server.
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl HttpClient {
    /// Connects, applying `timeout` to connect, reads and writes.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> std::io::Result<HttpClient> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(HttpClient {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request and reads the response (the connection stays usable afterwards).
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<HttpResponse> {
        self.request_with_headers(method, path, &[], body)
    }

    /// [`request`](HttpClient::request) with extra request headers (e.g. `x-trace-id`).
    pub fn request_with_headers(
        &mut self,
        method: &str,
        path: &str,
        extra_headers: &[(&str, &str)],
        body: Option<&str>,
    ) -> std::io::Result<HttpResponse> {
        let body = body.unwrap_or("");
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nhost: urm\r\ncontent-length: {}\r\n",
            body.len()
        );
        for (name, value) in extra_headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("\r\n");
        self.writer.write_all(head.as_bytes())?;
        self.writer.write_all(body.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Sends raw bytes verbatim (malformed-request tests) and reads whatever comes back.
    pub fn send_raw(&mut self, raw: &[u8]) -> std::io::Result<HttpResponse> {
        self.writer.write_all(raw)?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed",
            ));
        }
        Ok(line.trim_end_matches(['\r', '\n']).to_string())
    }

    fn read_response(&mut self) -> std::io::Result<HttpResponse> {
        let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
        let status_line = self.read_line()?;
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad(&format!("bad status line '{status_line}'")))?;
        let mut headers = Vec::new();
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            let (name, value) = line.split_once(':').ok_or_else(|| bad("bad header"))?;
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }

        let find = |name: &str| {
            headers
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.clone())
        };
        let mut body = Vec::new();
        if find("transfer-encoding").as_deref() == Some("chunked") {
            loop {
                let size_line = self.read_line()?;
                let size = usize::from_str_radix(size_line.trim(), 16)
                    .map_err(|_| bad(&format!("bad chunk size '{size_line}'")))?;
                let mut chunk = vec![0u8; size + 2]; // chunk + trailing CRLF
                self.reader.read_exact(&mut chunk)?;
                if size == 0 {
                    break;
                }
                chunk.truncate(size);
                body.extend_from_slice(&chunk);
            }
        } else {
            let length: usize = find("content-length")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0);
            body.resize(length, 0);
            self.reader.read_exact(&mut body)?;
        }
        Ok(HttpResponse {
            status,
            headers,
            body: String::from_utf8(body).map_err(|_| bad("non-UTF-8 body"))?,
        })
    }
}

/// One-shot convenience: connect, request, disconnect.
pub fn request_once(
    addr: SocketAddr,
    timeout: Duration,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<HttpResponse> {
    HttpClient::connect(addr, timeout)?.request(method, path, body)
}
