//! A minimal JSON value: parser and writer.
//!
//! The workspace has no registry access, so the wire format is handled by this ~200-line
//! module instead of `serde_json`.  It covers exactly what the HTTP front door needs: parsing
//! small request bodies and rendering response documents **deterministically** — objects keep
//! insertion order (`Vec` of pairs, not a map), and numbers render via Rust's shortest
//! round-trip `f64` formatting — so equal answers always produce byte-identical documents,
//! which is what the `http_bench` byte-identity assertion relies on.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; pairs keep insertion order for deterministic rendering.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks a key up in an object (`None` for absent keys or non-objects).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            // `{:?}` is Rust's shortest-roundtrip float rendering; integral values still get
            // a `.0` suffix, which keeps the format unambiguous and deterministic.
            Json::Num(n) if n.is_finite() => write!(f, "{n:?}"),
            Json::Num(_) => f.write_str("null"), // NaN/inf have no JSON form
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", byte as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this wire format; map lone
                            // surrogates to the replacement character instead of erroring.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the body was validated as UTF-8 upstream).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}'"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_documents() {
        let doc = Json::obj([
            ("name", Json::Str("q\"1\"\n".into())),
            ("n", Json::Num(2.5)),
            ("flags", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("nested", Json::obj([("k", Json::Num(3.0))])),
        ]);
        let text = doc.to_string();
        assert_eq!(Json::parse(&text).unwrap(), doc);
        assert_eq!(text, Json::parse(&text).unwrap().to_string());
    }

    #[test]
    fn rendering_is_deterministic_and_ordered() {
        let doc = Json::obj([("b", Json::Num(1.0)), ("a", Json::Num(0.5))]);
        assert_eq!(doc.to_string(), "{\"b\":1.0,\"a\":0.5}");
    }

    #[test]
    fn rejects_truncated_and_trailing_input() {
        assert!(Json::parse("{\"a\":").is_err());
        assert!(Json::parse("{\"a\": 1").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn parses_escapes_and_numbers() {
        let v = Json::parse(r#"{"s":"a\tbA","n":-1.5e2}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\tbA"));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(-150.0));
    }

    #[test]
    fn accessors_are_total() {
        let v = Json::parse("[1]").unwrap();
        assert!(v.get("k").is_none());
        assert!(v.as_str().is_none());
        assert_eq!(v.as_arr().unwrap().len(), 1);
        assert!(Json::Null.as_arr().is_none());
    }
}
