//! The wire format: workload specs in, canonically rendered answers out.
//!
//! Queries arrive as the same spec strings the replayable workload files use (`Q1`–`Q10`,
//! `sel:N`, `prod:N`, `join:N`, `scale:N` — see [`urm_datagen::replay`]), so a workload file
//! replayed over HTTP and one replayed in-process by `urm-cli` are the *same* request stream.
//! Answers render through one deterministic function ([`answer_json`]): tuples in
//! [`ProbabilisticAnswer::sorted`] order, probabilities in shortest-round-trip form — two equal
//! answers always produce byte-identical documents, which is what the `http_bench`
//! HTTP-vs-in-process identity assertion compares.

use crate::json::Json;
use urm_core::ProbabilisticAnswer;
use urm_datagen::replay::{parse_spec, WorkloadEntry};

/// Parses one workload spec (the `"spec"`/`"specs"` strings of `/query` and `/batch` bodies).
pub fn parse_query_spec(spec: &str) -> Result<WorkloadEntry, String> {
    parse_spec(spec).map_err(|e| e.to_string())
}

/// Renders one answer as a deterministic JSON object:
///
/// ```json
/// {"label":"Q1","tuples":[["(123)",0.5],["(456)",0.3]],"empty_probability":0.2}
/// ```
///
/// Tuples are rendered with their `Display` form (probability-descending, ties broken by tuple
/// order — [`ProbabilisticAnswer::sorted`]), so equal answers render byte-identically no matter
/// which path produced them.
#[must_use]
pub fn answer_json(label: &str, answer: &ProbabilisticAnswer) -> Json {
    Json::obj([
        ("label", Json::Str(label.to_string())),
        (
            "tuples",
            Json::Arr(
                answer
                    .sorted()
                    .into_iter()
                    .map(|(tuple, p)| Json::Arr(vec![Json::Str(tuple.to_string()), Json::Num(p)]))
                    .collect(),
            ),
        ),
        ("empty_probability", Json::Num(answer.empty_probability())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use urm_core::prelude::{Tuple, Value};

    #[test]
    fn specs_parse_like_workload_files() {
        assert_eq!(parse_query_spec(" Q4 ").unwrap().label, "Q4");
        assert_eq!(parse_query_spec("sel:2").unwrap().label, "sel:2");
        assert!(parse_query_spec("Q99").is_err());
    }

    #[test]
    fn answers_render_deterministically() {
        let mut answer = ProbabilisticAnswer::new();
        answer.add(Tuple::new(vec![Value::from("b")]), 0.25);
        answer.add(Tuple::new(vec![Value::from("a")]), 0.5);
        answer.add_empty(0.25);
        let mut again = ProbabilisticAnswer::new();
        again.add(Tuple::new(vec![Value::from("a")]), 0.5);
        again.add(Tuple::new(vec![Value::from("b")]), 0.25);
        again.add_empty(0.25);
        let rendered = answer_json("q", &answer).to_string();
        assert_eq!(rendered, answer_json("q", &again).to_string());
        assert_eq!(
            rendered,
            "{\"label\":\"q\",\"tuples\":[[\"(a)\",0.5],[\"(b)\",0.25]],\
             \"empty_probability\":0.25}"
        );
    }
}
