//! A small, strict HTTP/1.1 implementation over `std::net::TcpStream`.
//!
//! No `hyper`, no `tokio`: the build environment has no registry access, and the front door's
//! needs are modest — parse one request at a time off a blocking socket (with a byte limit and
//! a read timeout enforced by the caller via `set_read_timeout`), and write fixed or
//! **chunked** responses back.  Chunked transfer encoding is what lets `/batch` stream each
//! answer as soon as its batch resolves instead of buffering the whole response.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Hard cap on the request head (request line + headers) — generous for curl and the bench
/// client, small enough that a slow-loris connection cannot balloon memory either.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// The method, uppercased by the client (`GET`, `POST`, …; passed through verbatim).
    pub method: String,
    /// The request target (path + optional query string, verbatim).
    pub path: String,
    /// Headers, lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header with this (lowercase) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection before a request line arrived (normal keep-alive end).
    Closed,
    /// The socket timed out mid-request (slow-loris) or failed.
    Io(std::io::Error),
    /// The request was syntactically invalid; respond 400.
    Malformed(String),
    /// The declared body exceeds the configured limit; respond 413.
    BodyTooLarge {
        /// The offending `Content-Length`.
        declared: usize,
        /// The configured cap.
        limit: usize,
    },
}

impl HttpError {
    /// Whether this error is a mid-request socket timeout.
    #[must_use]
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            HttpError::Io(e) if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            )
        )
    }
}

/// Reads one request off `reader`.
///
/// `Ok(request)` on success; [`HttpError::Closed`] when the peer hung up between requests;
/// [`HttpError::Io`] when the socket's read timeout fired mid-request (the slow-loris case —
/// the caller set the timeout on the underlying `TcpStream`).  Bodies require an explicit
/// `Content-Length` and are rejected with [`HttpError::BodyTooLarge`] *before* any body byte
/// is read, so an oversized upload costs the server nothing.
pub fn read_request(
    reader: &mut BufReader<TcpStream>,
    max_body_bytes: usize,
) -> Result<Request, HttpError> {
    let request_line = read_line(reader, true)?;
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => {
            return Err(HttpError::Malformed(format!(
                "bad request line '{request_line}'"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("bad version '{version}'")));
    }

    let mut headers = Vec::new();
    let mut head_bytes = request_line.len();
    loop {
        let line = read_line(reader, false)?;
        if line.is_empty() {
            break;
        }
        head_bytes += line.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(HttpError::Malformed("request head too large".into()));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header '{line}'")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("bad content-length '{v}'")))?,
        None => 0,
    };
    if content_length > max_body_bytes {
        return Err(HttpError::BodyTooLarge {
            declared: content_length,
            limit: max_body_bytes,
        });
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(HttpError::Io)?;

    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body,
    })
}

/// Reads one CRLF-terminated line (the terminator is stripped; bare LF tolerated).
fn read_line(reader: &mut BufReader<TcpStream>, first: bool) -> Result<String, HttpError> {
    let mut line = Vec::new();
    let mut limited = reader.by_ref().take(MAX_HEAD_BYTES as u64 + 1);
    match limited.read_until(b'\n', &mut line) {
        Ok(0) if first && line.is_empty() => return Err(HttpError::Closed),
        Ok(0) => return Err(HttpError::Malformed("unexpected end of head".into())),
        Ok(_) if line.last() != Some(&b'\n') => {
            return Err(HttpError::Malformed("request head too large".into()))
        }
        Ok(_) => {}
        Err(e) => return Err(HttpError::Io(e)),
    }
    while matches!(line.last(), Some(b'\n' | b'\r')) {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| HttpError::Malformed("non-UTF-8 request head".into()))
}

/// The reason phrase for the status codes this server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes a fixed-length JSON response (the common case for errors and small documents).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, String)],
    body: &str,
) -> std::io::Result<()> {
    write_response_typed(stream, status, "application/json", extra_headers, body)
}

/// [`write_response`] with an explicit `content-type` — the Prometheus exposition at
/// `GET /metrics` is `text/plain`, everything else this server emits is JSON.
pub fn write_response_typed(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &str,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// A chunked-transfer-encoding response body: each [`chunk`](ChunkedWriter::chunk) hits the
/// wire immediately, so `/batch` clients see answers stream in as their batches resolve.
/// Dropping the writer without [`finish`](ChunkedWriter::finish) leaves the chunk stream
/// unterminated, which clients correctly treat as a truncated response.
pub struct ChunkedWriter<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> ChunkedWriter<'a> {
    /// Writes the response head and returns the body writer.
    pub fn start(stream: &'a mut TcpStream, status: u16) -> std::io::Result<Self> {
        ChunkedWriter::start_with_headers(stream, status, &[])
    }

    /// [`start`](ChunkedWriter::start) with extra response headers (e.g. the `x-trace-id`
    /// echo on traced `/query` and `/batch` requests).
    pub fn start_with_headers(
        stream: &'a mut TcpStream,
        status: u16,
        extra_headers: &[(&str, String)],
    ) -> std::io::Result<Self> {
        let mut head = format!(
            "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\n\
             transfer-encoding: chunked\r\n",
            reason(status)
        );
        for (name, value) in extra_headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        Ok(ChunkedWriter { stream })
    }

    /// Writes one chunk (empty chunks are skipped: an empty chunk terminates the stream).
    pub fn chunk(&mut self, data: &str) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data.as_bytes())?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Terminates the chunk stream.
    pub fn finish(self) -> std::io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}
