//! Admission control in front of the [`QueryService`](urm_service::QueryService).
//!
//! The service itself accepts every submission and queues it; a public front door cannot — a
//! burst of clients would build an unbounded pending queue and every response would arrive
//! late.  This module bounds the damage with two independent gates, both answered with
//! **429 + `Retry-After`** when closed:
//!
//! * a **bounded in-flight budget**: at most `queue_capacity` *cost units* may be admitted and
//!   not yet answered, service-wide.  Each request is charged its estimated evaluation cost —
//!   the serving epoch's observed operators-per-query once it has history, a static plan-shape
//!   estimate before that — so ten admitted join-heavy queries reserve far more of the queue
//!   than ten cached point lookups, and back-pressure arrives when the *work* is saturated,
//!   not the request count.  Admission takes a [`Permit`] (RAII: dropping it releases the
//!   units), so a slow batch propagates back-pressure to new arrivals instead of growing a
//!   queue;
//! * a **per-client token bucket**: each client address gets `burst` tokens refilled at
//!   `refill_per_sec`; one token per query.  A greedy client throttles itself, not its
//!   neighbours.
//!
//! Socket hygiene (body-size cap, read/write timeouts) lives in the same config because the
//! accept loop applies all of it at connection setup.

use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The admission knobs (see the module docs; all enforced by [`AdmissionController`] or the
/// connection handler).
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Maximum *cost units* admitted and not yet answered, service-wide (`0` rejects
    /// everything — useful for drain tests).  A request costs the sum of its queries' cost
    /// estimates (each at least 1), so the capacity still upper-bounds the admitted query
    /// count while expensive queries consume proportionally more of it.
    pub queue_capacity: usize,
    /// Token-bucket capacity per client address (the permissible burst).
    pub burst: f64,
    /// Token-bucket refill rate per client address, in tokens (queries) per second.
    pub refill_per_sec: f64,
    /// Maximum accepted request-body size in bytes; larger uploads get 413 before the body is
    /// read.
    pub max_body_bytes: usize,
    /// Socket read timeout: a connection that dribbles its request slower than this (the
    /// slow-loris shape) is answered 408 and closed.
    pub read_timeout: Duration,
    /// Socket write timeout: a client that stops reading its response is disconnected.
    pub write_timeout: Duration,
    /// The `Retry-After` value (seconds) sent with 429 responses.
    pub retry_after_secs: u32,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            queue_capacity: 8192,
            burst: 256.0,
            refill_per_sec: 512.0,
            max_body_bytes: 1 << 20,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            retry_after_secs: 1,
        }
    }
}

/// Why a request was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejected {
    /// The service-wide in-flight budget is exhausted.
    QueueFull,
    /// The client's token bucket is empty.
    ClientThrottled,
}

struct Bucket {
    tokens: f64,
    refilled: Instant,
}

struct State {
    /// Cost units admitted and not yet released.
    in_flight: u64,
    buckets: HashMap<IpAddr, Bucket>,
}

/// The shared admission state; cheap to clone (one `Arc`).
#[derive(Clone)]
pub struct AdmissionController {
    config: AdmissionConfig,
    state: Arc<Mutex<State>>,
}

impl AdmissionController {
    /// A controller enforcing `config`.
    #[must_use]
    pub fn new(config: AdmissionConfig) -> Self {
        AdmissionController {
            config,
            state: Arc::new(Mutex::new(State {
                in_flight: 0,
                buckets: HashMap::new(),
            })),
        }
    }

    /// The configuration being enforced.
    #[must_use]
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Tries to admit `queries` queries of estimated evaluation cost `cost` from `client`:
    /// both gates must pass, atomically — a request rejected by the token bucket consumes no
    /// queue units and vice versa.
    ///
    /// The in-flight gate charges `max(cost, queries)` units (every query costs at least one
    /// unit, so capacity still bounds the raw query count); the per-client token bucket stays
    /// per-*query* — fairness between clients is about request volume, not how expensive the
    /// service estimates their queries to be.
    pub fn admit(&self, client: IpAddr, queries: usize, cost: u64) -> Result<Permit, Rejected> {
        let units = cost.max(queries as u64);
        let mut state = self.state.lock().unwrap();
        if state.in_flight + units > self.config.queue_capacity as u64 {
            return Err(Rejected::QueueFull);
        }
        let now = Instant::now();
        let bucket = state.buckets.entry(client).or_insert(Bucket {
            tokens: self.config.burst,
            refilled: now,
        });
        let elapsed = now.saturating_duration_since(bucket.refilled).as_secs_f64();
        bucket.tokens =
            (bucket.tokens + elapsed * self.config.refill_per_sec).min(self.config.burst);
        bucket.refilled = now;
        if bucket.tokens < queries as f64 {
            return Err(Rejected::ClientThrottled);
        }
        bucket.tokens -= queries as f64;
        state.in_flight += units;
        Ok(Permit {
            state: Arc::clone(&self.state),
            units,
        })
    }

    /// Cost units currently admitted and unanswered.
    #[must_use]
    pub fn in_flight(&self) -> u64 {
        self.state.lock().unwrap().in_flight
    }
}

/// Exponential-decay weight of the newest cost observation (matches the engine's
/// cardinality-feedback α, so both arms of the adaptive loop converge at the same rate).
const COST_ALPHA: f64 = 0.5;

/// Distinct query specs the cost model tracks; further specs fall back to the static
/// estimate (an unbounded client vocabulary must not grow server memory without bound).
const COST_MODEL_CAPACITY: usize = 4096;

/// Per-spec observed-latency cost model: the admission layer's adaptive arm.
///
/// The in-flight queue is denominated in *cost units* (the static plan-shape estimate:
/// `1 + predicates + relations²`).  Static estimates mis-rank real workloads — a three-way
/// join over tiny slices is charged more than a scan that dominates wall-clock.  This model
/// learns per *query spec* (keyed by the query's canonical rendering) an EWMA of observed
/// evaluation latency, plus one global EWMA of nanoseconds-per-static-unit to convert
/// latencies back into queue units.  [`estimate`](CostModel::estimate) then charges a spec
/// what it has actually been costing, and specs never observed (or beyond the capacity cap)
/// fall back to the static estimate.
#[derive(Default)]
pub struct CostModel {
    inner: Mutex<CostState>,
}

#[derive(Default)]
struct CostState {
    /// Spec key → decayed observed latency (ns).
    specs: HashMap<String, f64>,
    /// Decayed nanoseconds per static cost unit across all observations (0 = no history).
    ns_per_unit: f64,
}

impl CostModel {
    /// An empty model (every estimate falls back to the caller's static estimate).
    #[must_use]
    pub fn new() -> Self {
        CostModel::default()
    }

    /// Folds one observed evaluation of `key`: its wall-clock `latency` and the static
    /// plan-shape `static_cost` the fallback would have charged.  Zero latencies (answer-cache
    /// hits record no evaluation time) should be skipped by the caller — they would teach the
    /// model that evaluation is free.
    pub fn observe(&self, key: &str, latency: Duration, static_cost: u64) {
        let nanos = latency.as_nanos() as f64;
        let mut state = self.inner.lock().unwrap();
        let per_unit = nanos / static_cost.max(1) as f64;
        state.ns_per_unit = if state.ns_per_unit == 0.0 {
            per_unit
        } else {
            (1.0 - COST_ALPHA) * state.ns_per_unit + COST_ALPHA * per_unit
        };
        let room = state.specs.len() < COST_MODEL_CAPACITY;
        match state.specs.entry(key.to_string()) {
            std::collections::hash_map::Entry::Occupied(mut entry) => {
                let observed = entry.get_mut();
                *observed = (1.0 - COST_ALPHA) * *observed + COST_ALPHA * nanos;
            }
            std::collections::hash_map::Entry::Vacant(entry) if room => {
                entry.insert(nanos);
            }
            std::collections::hash_map::Entry::Vacant(_) => {}
        }
    }

    /// The spec's estimated cost in queue units — its decayed observed latency divided by the
    /// global ns-per-unit rate (always at least 1) — or `None` while the spec (or the rate)
    /// has no history, in which case the caller charges its static estimate.
    #[must_use]
    pub fn estimate(&self, key: &str) -> Option<u64> {
        let state = self.inner.lock().unwrap();
        if state.ns_per_unit == 0.0 {
            return None;
        }
        let observed = *state.specs.get(key)?;
        Some((observed / state.ns_per_unit).round().max(1.0) as u64)
    }

    /// Distinct query specs with observed history.
    #[must_use]
    pub fn observed_specs(&self) -> usize {
        self.inner.lock().unwrap().specs.len()
    }
}

/// An admitted batch's claim on the in-flight budget; dropping it releases the units.
pub struct Permit {
    state: Arc<Mutex<State>>,
    units: u64,
}

impl std::fmt::Debug for Permit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Permit")
            .field("units", &self.units)
            .finish()
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.state.lock().unwrap().in_flight -= self.units;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client(n: u8) -> IpAddr {
        IpAddr::from([127, 0, 0, n])
    }

    fn config(queue: usize, burst: f64, refill: f64) -> AdmissionConfig {
        AdmissionConfig {
            queue_capacity: queue,
            burst,
            refill_per_sec: refill,
            ..AdmissionConfig::default()
        }
    }

    #[test]
    fn queue_capacity_bounds_in_flight_and_permits_release() {
        let ctl = AdmissionController::new(config(3, 100.0, 0.0));
        let a = ctl.admit(client(1), 2, 2).unwrap();
        assert_eq!(ctl.in_flight(), 2);
        assert_eq!(ctl.admit(client(2), 2, 2).unwrap_err(), Rejected::QueueFull);
        let b = ctl.admit(client(2), 1, 1).unwrap();
        assert_eq!(ctl.in_flight(), 3);
        drop(a);
        assert_eq!(ctl.in_flight(), 1);
        let c = ctl.admit(client(2), 2, 2).unwrap();
        drop((b, c));
        assert_eq!(ctl.in_flight(), 0);
    }

    #[test]
    fn cost_units_weight_the_queue_not_the_query_count() {
        // Capacity 10 units: one 8-unit query crowds out a second expensive one, while cheap
        // queries still fit — the queue gates on estimated work, not request count.
        let ctl = AdmissionController::new(config(10, 100.0, 0.0));
        let expensive = ctl.admit(client(1), 1, 8).unwrap();
        assert_eq!(ctl.in_flight(), 8);
        assert_eq!(ctl.admit(client(2), 1, 8).unwrap_err(), Rejected::QueueFull);
        let cheap = ctl.admit(client(2), 2, 2).unwrap();
        assert_eq!(ctl.in_flight(), 10);
        drop(expensive);
        // Releasing the expensive permit returns its 8 units, not 1.
        assert_eq!(ctl.in_flight(), 2);
        drop(cheap);
        assert_eq!(ctl.in_flight(), 0);
        // A query always costs at least one unit, even if the estimate says zero.
        let floor = ctl.admit(client(3), 3, 0).unwrap();
        assert_eq!(ctl.in_flight(), 3);
        drop(floor);
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let ctl = AdmissionController::new(config(0, 100.0, 100.0));
        assert_eq!(ctl.admit(client(1), 1, 1).unwrap_err(), Rejected::QueueFull);
    }

    #[test]
    fn token_buckets_are_per_client() {
        // No refill: client 1's burst of 2 runs dry; client 2 is unaffected.  The bucket
        // charges per query — an expensive cost estimate must not starve a client's tokens.
        let ctl = AdmissionController::new(config(100, 2.0, 0.0));
        let _a = ctl.admit(client(1), 1, 9).unwrap();
        let _b = ctl.admit(client(1), 1, 9).unwrap();
        assert_eq!(
            ctl.admit(client(1), 1, 1).unwrap_err(),
            Rejected::ClientThrottled
        );
        let _c = ctl.admit(client(2), 2, 2).unwrap();
        // A throttled request consumed no queue units.
        assert_eq!(ctl.in_flight(), 20);
    }

    #[test]
    fn cost_model_learns_per_spec_latency_and_stays_cold_for_unknown_specs() {
        let model = CostModel::new();
        assert_eq!(model.estimate("q"), None, "no history yet");
        // 1000 ns at static cost 10 → 100 ns/unit: the spec is charged its static 10 units.
        model.observe("q", Duration::from_nanos(1000), 10);
        assert_eq!(model.estimate("q"), Some(10));
        assert_eq!(model.estimate("other"), None, "unknown specs stay static");
        assert_eq!(model.observed_specs(), 1);
        // The EWMA tracks drift without forgetting: both the spec latency and the global rate
        // halve towards the new observation.
        model.observe("q", Duration::from_nanos(3000), 10);
        assert_eq!(model.estimate("q"), Some(10));
        // A spec observed far slower than its plan shape suggests is charged far more.
        model.observe("heavy", Duration::from_nanos(20_000), 10);
        assert!(model.estimate("heavy").unwrap() > model.estimate("q").unwrap());
    }

    #[test]
    fn buckets_refill_over_time() {
        let ctl = AdmissionController::new(config(100, 1.0, 1000.0));
        let _a = ctl.admit(client(1), 1, 1).unwrap();
        // 1000 tokens/sec: a few milliseconds refill the single-token bucket.
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            match ctl.admit(client(1), 1, 1) {
                Ok(_) => break,
                Err(Rejected::ClientThrottled) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(other) => panic!("unexpected rejection: {other:?}"),
            }
        }
    }
}
