//! `urm-server` — serve URM probabilistic queries over HTTP.
//!
//! Generates one `urm-datagen` scenario per requested target schema, registers each as a
//! service epoch and serves them until the process is killed (CI drives a clean stop by
//! closing its clients and sending SIGTERM; the drain logic lives in the library and is
//! exercised by the tests and `http_bench`, which own their server handle).
//!
//! ```text
//! cargo run --release -p urm-server --bin urm-server -- --addr 127.0.0.1:7171 --scale 20
//! curl -s http://127.0.0.1:7171/healthz
//! curl -s -X POST http://127.0.0.1:7171/query -d '{"spec": "Q4"}'
//! curl -s -X POST http://127.0.0.1:7171/batch -d '{"specs": ["Q1", "join:3"]}'
//! curl -s http://127.0.0.1:7171/metrics        # Prometheus text exposition
//! curl -s http://127.0.0.1:7171/metrics.json   # JSON snapshot
//! curl -s http://127.0.0.1:7171/debug/traces   # recent traces (X-Trace-Id / --trace-sample)
//! ```

use std::process::ExitCode;
use std::time::Duration;
use urm_datagen::scenario::{Scenario, ScenarioConfig, TargetSchemaKind};
use urm_server::{AdmissionConfig, AdmissionController, UrmServer};
use urm_service::{QueryService, ServiceConfig};
use urm_storage::ShardScheme;

struct Args {
    addr: String,
    targets: Vec<TargetSchemaKind>,
    scale: usize,
    mappings: usize,
    seed: u64,
    workers: usize,
    dag_workers: usize,
    batch_size: usize,
    pipeline: bool,
    adaptive: bool,
    shards: usize,
    shard_scheme: ShardScheme,
    trace_sample: usize,
    memory_budget: Option<usize>,
    queue_capacity: usize,
    burst: f64,
    refill_per_sec: f64,
    max_body_bytes: usize,
    read_timeout_ms: u64,
    write_timeout_ms: u64,
}

impl Default for Args {
    fn default() -> Self {
        let service = ServiceConfig::default();
        let admission = AdmissionConfig::default();
        Args {
            addr: "127.0.0.1:7171".into(),
            targets: vec![TargetSchemaKind::Excel],
            scale: 20,
            mappings: 30,
            seed: 42,
            workers: 4,
            dag_workers: service.dag_workers,
            batch_size: 64,
            pipeline: service.pipeline,
            adaptive: service.adaptive,
            shards: service.shards,
            shard_scheme: service.shard_scheme,
            trace_sample: service.trace_sample,
            memory_budget: service.memory_budget,
            queue_capacity: admission.queue_capacity,
            burst: admission.burst,
            refill_per_sec: admission.refill_per_sec,
            max_body_bytes: admission.max_body_bytes,
            read_timeout_ms: admission.read_timeout.as_millis() as u64,
            write_timeout_ms: admission.write_timeout.as_millis() as u64,
        }
    }
}

const USAGE: &str = "\
urm-server — serve URM probabilistic queries over HTTP

USAGE:
  urm-server [OPTIONS]

OPTIONS:
  --addr A:P          listen address (default 127.0.0.1:7171; port 0 picks a free port)
  --targets LIST      comma-separated target schemas to serve: excel,noris,paragon
                      (default excel; each gets its own generated scenario and epoch)
  --scale N           scenario scale factor (default 20)
  --mappings H        possible mappings per scenario (default 30)
  --seed S            data-generation seed (default 42)
  --workers W         service worker threads (default 4)
  --dag-workers D     intra-batch DAG scheduler threads (default: half the host threads, 1–4)
  --batch-size B      max queries per service batch (default 64)
  --pipeline on|off   two-stage epoch lock (default on)
  --adaptive on|off   observed-cardinality feedback loop (default on; answers identical)
  --shards N          scatter-gather each epoch across N partitioned shard runtimes (default 1
                      = single-node; answers are byte-identical, /metrics gains shard counters)
  --shard-scheme S    hash (default) or range partitioning of the source relations
  --memory-budget B   per-epoch byte budget for materialised relations (per shard with
                      --shards; default: unbudgeted)
  --trace-sample N    trace every Nth batch (default 0 = off; requests carrying an
                      X-Trace-Id header are always traced — see GET /debug/traces)
  --queue-capacity N  max admitted-but-unanswered *cost units*, service-wide (default 8192;
                      each query is charged its estimated evaluation cost, at least 1)
  --burst N           per-client token-bucket capacity (default 256)
  --refill N          per-client token refill rate, queries/sec (default 512)
  --max-body N        max request-body bytes (default 1048576)
  --read-timeout MS   socket read timeout in ms — the slow-loris bound (default 10000)
  --write-timeout MS  socket write timeout in ms (default 10000)
  --help              print this help
";

fn parse_targets(list: &str) -> Result<Vec<TargetSchemaKind>, String> {
    list.split(',')
        .map(|name| match name.trim().to_ascii_lowercase().as_str() {
            "excel" => Ok(TargetSchemaKind::Excel),
            "noris" => Ok(TargetSchemaKind::Noris),
            "paragon" => Ok(TargetSchemaKind::Paragon),
            other => Err(format!("unknown target schema '{other}'")),
        })
        .collect()
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--targets" => args.targets = parse_targets(&value("--targets")?)?,
            "--scale" => args.scale = parse_num(&value("--scale")?)?,
            "--mappings" => args.mappings = parse_num(&value("--mappings")?)?,
            "--seed" => args.seed = parse_num(&value("--seed")?)? as u64,
            "--workers" => args.workers = parse_num(&value("--workers")?)?,
            "--dag-workers" => args.dag_workers = parse_num(&value("--dag-workers")?)?,
            "--batch-size" => args.batch_size = parse_num(&value("--batch-size")?)?,
            "--shards" => args.shards = parse_num(&value("--shards")?)?.max(1),
            "--shard-scheme" => args.shard_scheme = value("--shard-scheme")?.parse()?,
            "--memory-budget" => args.memory_budget = Some(parse_num(&value("--memory-budget")?)?),
            "--trace-sample" => args.trace_sample = parse_num(&value("--trace-sample")?)?,
            "--queue-capacity" => args.queue_capacity = parse_num(&value("--queue-capacity")?)?,
            "--burst" => args.burst = parse_num(&value("--burst")?)? as f64,
            "--refill" => args.refill_per_sec = parse_num(&value("--refill")?)? as f64,
            "--max-body" => args.max_body_bytes = parse_num(&value("--max-body")?)?,
            "--read-timeout" => args.read_timeout_ms = parse_num(&value("--read-timeout")?)? as u64,
            "--write-timeout" => {
                args.write_timeout_ms = parse_num(&value("--write-timeout")?)? as u64;
            }
            "--pipeline" => {
                args.pipeline = match value("--pipeline")?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("--pipeline expects on|off, got '{other}'")),
                }
            }
            "--adaptive" => {
                args.adaptive = match value("--adaptive")?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("--adaptive expects on|off, got '{other}'")),
                }
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    Ok(args)
}

fn parse_num(s: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("invalid number '{s}'"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };

    let service = QueryService::new(ServiceConfig {
        workers: args.workers,
        batch_max: args.batch_size,
        dag_workers: args.dag_workers,
        pipeline: args.pipeline,
        adaptive: args.adaptive,
        shards: args.shards,
        shard_scheme: args.shard_scheme,
        trace_sample: args.trace_sample,
        memory_budget: args.memory_budget,
        ..ServiceConfig::default()
    });
    let mut epochs = Vec::new();
    for target in &args.targets {
        eprintln!(
            "generating scenario: target={target} scale={} mappings={} seed={} …",
            args.scale, args.mappings, args.seed
        );
        let scenario = match Scenario::generate(&ScenarioConfig {
            target: *target,
            scale: args.scale,
            mappings: args.mappings,
            seed: args.seed,
        }) {
            Ok(s) => s,
            Err(err) => {
                eprintln!("error: scenario generation failed: {err}");
                return ExitCode::FAILURE;
            }
        };
        let epoch = service.register_epoch(scenario.catalog, scenario.mappings);
        epochs.push((*target, epoch));
    }

    let admission = AdmissionController::new(AdmissionConfig {
        queue_capacity: args.queue_capacity,
        burst: args.burst,
        refill_per_sec: args.refill_per_sec,
        max_body_bytes: args.max_body_bytes,
        read_timeout: Duration::from_millis(args.read_timeout_ms),
        write_timeout: Duration::from_millis(args.write_timeout_ms),
        retry_after_secs: 1,
    });
    let server = match UrmServer::start(&args.addr, service, epochs, admission) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("error: cannot bind {}: {err}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    // The line CI greps for; also how scripts discover the port when --addr ends in :0.
    println!("urm-server listening on http://{}", server.addr());

    // Serve until killed.  (Library users — tests, http_bench — call `shutdown()` for the
    // draining stop; a standalone binary has no portable signal handling without deps, so the
    // accept thread simply runs until the process exits.)
    loop {
        std::thread::park();
    }
}
