//! The HTTP front door: accept loop, routing, graceful shutdown.
//!
//! One thread accepts, one thread per connection serves HTTP/1.1 with keep-alive.  Requests
//! pass the [`AdmissionController`] before touching the [`QueryService`]; admitted queries go
//! through the service's normal batch path (and so share its answer cache, epoch DAGs and the
//! two-stage bind/execute pipeline).  Shutdown is **draining**: the listener closes first, then
//! in-flight connections get [`DRAIN_GRACE`] to finish their current request before the server
//! returns — no accepted query is abandoned.

use crate::admission::{AdmissionController, CostModel, Rejected};
use crate::http::{read_request, write_response, ChunkedWriter, HttpError, Request};
use crate::json::Json;
use crate::wire::{answer_json, parse_query_spec};
use std::io::BufReader;
use std::net::{IpAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use urm_datagen::scenario::TargetSchemaKind;
use urm_service::{EpochId, QueryService, ServedFrom, Ticket};

/// How long [`UrmServer::shutdown`] waits for in-flight connections before giving up on them.
pub const DRAIN_GRACE: Duration = Duration::from_secs(30);

struct Shared {
    service: QueryService,
    /// The epoch serving each target schema (registered by the caller before start).
    epochs: Vec<(TargetSchemaKind, EpochId)>,
    admission: AdmissionController,
    /// Per-spec observed-latency cost model: admission charges what a spec has actually been
    /// costing, falling back to the epoch's observed operators-per-query, then to the static
    /// plan-shape estimate.
    cost_model: CostModel,
    stopping: AtomicBool,
    /// Open connections, for the drain barrier.
    connections: AtomicUsize,
    drained: Condvar,
    drain_lock: Mutex<()>,
}

impl Shared {
    fn epoch_for(&self, target: TargetSchemaKind) -> Option<EpochId> {
        self.epochs
            .iter()
            .find(|(kind, _)| *kind == target)
            .map(|(_, id)| *id)
    }
}

/// A running HTTP server; dropping it (or calling [`shutdown`](UrmServer::shutdown)) drains
/// and stops it.
pub struct UrmServer {
    shared: Arc<Shared>,
    addr: std::net::SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl UrmServer {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts serving the given epochs.
    ///
    /// `epochs` maps each target schema to the [`EpochId`] the caller registered with
    /// `service` — specs addressing an unlisted schema are answered 400.
    pub fn start(
        addr: &str,
        service: QueryService,
        epochs: Vec<(TargetSchemaKind, EpochId)>,
        admission: AdmissionController,
    ) -> std::io::Result<UrmServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            service,
            epochs,
            admission,
            cost_model: CostModel::new(),
            stopping: AtomicBool::new(false),
            connections: AtomicUsize::new(0),
            drained: Condvar::new(),
            drain_lock: Mutex::new(()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("urm-server-accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared))?;
        Ok(UrmServer {
            shared,
            addr: local,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The service metrics (same snapshot `/metrics` serves).
    #[must_use]
    pub fn metrics(&self) -> urm_service::ServiceMetrics {
        self.shared.service.metrics()
    }

    /// Stops accepting, drains in-flight connections (bounded by [`DRAIN_GRACE`]), flushes the
    /// service's pending batches and joins its workers.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shared.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        // The accept thread is blocked in `accept`; a throwaway connection unblocks it so it
        // can observe `stopping` and exit, closing the listener.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        // Drain: every connection opened before the listener closed gets to finish its
        // current request (keep-alive waits are cut short by the read timeout).
        let deadline = Instant::now() + DRAIN_GRACE;
        let mut guard = self.shared.drain_lock.lock().unwrap();
        while self.shared.connections.load(Ordering::SeqCst) > 0 {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            let (g, _) = self.shared.drained.wait_timeout(guard, left).unwrap();
            guard = g;
        }
        drop(guard);
        self.shared.service.flush();
    }
}

impl Drop for UrmServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stopping.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let conn_shared = Arc::clone(shared);
        shared.connections.fetch_add(1, Ordering::SeqCst);
        let result = std::thread::Builder::new()
            .name("urm-server-conn".into())
            .spawn(move || {
                handle_connection(stream, &conn_shared);
                let _guard = conn_shared.drain_lock.lock().unwrap();
                conn_shared.connections.fetch_sub(1, Ordering::SeqCst);
                conn_shared.drained.notify_all();
            });
        if result.is_err() {
            // Spawn failure: undo the increment or the drain barrier waits forever.
            let _guard = shared.drain_lock.lock().unwrap();
            shared.connections.fetch_sub(1, Ordering::SeqCst);
            shared.drained.notify_all();
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let config = shared.admission.config().clone();
    if stream.set_read_timeout(Some(config.read_timeout)).is_err()
        || stream
            .set_write_timeout(Some(config.write_timeout))
            .is_err()
        || stream.set_nodelay(true).is_err()
    {
        return;
    }
    let client: IpAddr = match stream.peer_addr() {
        Ok(peer) => peer.ip(),
        Err(_) => return,
    };
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);

    // Keep-alive loop: serve requests until the peer hangs up, errors, or the server drains.
    loop {
        let request = match read_request(&mut reader, config.max_body_bytes) {
            Ok(request) => request,
            Err(HttpError::Closed) => return,
            Err(err) if err.is_timeout() => {
                // Slow-loris (or an idle keep-alive connection during drain): tell the peer
                // and hang up.  The write is best-effort — the peer may be gone.
                let _ = write_response(&mut writer, 408, &[], &error_body("read timeout"));
                return;
            }
            Err(HttpError::Io(_)) => return,
            Err(HttpError::Malformed(msg)) => {
                let _ = write_response(&mut writer, 400, &[], &error_body(&msg));
                return; // framing is unrecoverable after a malformed head
            }
            Err(HttpError::BodyTooLarge { declared, limit }) => {
                let msg = format!("body of {declared} bytes exceeds the {limit}-byte limit");
                let _ = write_response(&mut writer, 413, &[], &error_body(&msg));
                return; // the unread body still sits in the socket; drop the connection
            }
        };
        if respond(&mut writer, &request, client, shared).is_err() {
            return;
        }
        if shared.stopping.load(Ordering::SeqCst) {
            return; // drained: finish this request, take no more on this connection
        }
    }
}

fn error_body(message: &str) -> String {
    Json::obj([("error", Json::Str(message.to_string()))]).to_string()
}

fn respond(
    writer: &mut TcpStream,
    request: &Request,
    client: IpAddr,
    shared: &Shared,
) -> std::io::Result<()> {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => write_response(writer, 200, &[], &healthz_body(shared)),
        ("GET", "/metrics") => write_response(writer, 200, &[], &metrics_body(shared)),
        ("POST", "/query") => serve_queries(writer, request, client, shared, false),
        ("POST", "/batch") => serve_queries(writer, request, client, shared, true),
        ("GET" | "POST", _) => write_response(writer, 404, &[], &error_body("unknown path")),
        _ => write_response(writer, 405, &[], &error_body("method not allowed")),
    }
}

fn healthz_body(shared: &Shared) -> String {
    Json::obj([
        ("status", Json::Str("ok".into())),
        (
            "epochs",
            Json::Arr(
                shared
                    .epochs
                    .iter()
                    .map(|(kind, id)| {
                        Json::obj([
                            ("target", Json::Str(kind.to_string())),
                            ("epoch", Json::Num(id.raw() as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .to_string()
}

fn metrics_body(shared: &Shared) -> String {
    let m = shared.service.metrics();
    let n = |v: u64| Json::Num(v as f64);
    Json::obj([
        ("queries_submitted", n(m.queries_submitted)),
        ("queries_evaluated", n(m.queries_evaluated)),
        ("batches", n(m.batches)),
        ("answer_cache_hits", n(m.answer_cache_hits)),
        ("answer_cache_misses", n(m.answer_cache_misses)),
        ("answer_cache_evictions", n(m.answer_cache_evictions)),
        ("batch_deduped", n(m.batch_deduped)),
        ("plan_cache_hits", n(m.plan_cache_hits)),
        ("plan_cache_misses", n(m.plan_cache_misses)),
        ("dag_nodes_executed", n(m.dag_nodes_executed)),
        ("dag_peak_parallelism", n(m.dag_peak_parallelism)),
        ("epoch_bind_hits", n(m.epoch_bind_hits)),
        ("epoch_results_reused", n(m.epoch_results_reused)),
        ("source_operators", n(m.source_operators)),
        ("tuples_read", n(m.tuples_read)),
        ("tuples_output", n(m.tuples_output)),
        ("rows_shared", n(m.rows_shared)),
        ("bytes_spilled", n(m.bytes_spilled)),
        ("spill_reloads", n(m.spill_reloads)),
        ("grace_partitions", n(m.grace_partitions)),
        ("columnar_rows", n(m.columnar_rows)),
        ("segment_bytes_raw", n(m.segment_bytes_raw)),
        ("segment_bytes_encoded", n(m.segment_bytes_encoded)),
        ("observed_nodes", n(m.observed_nodes)),
        ("reordered_joins", n(m.reordered_joins)),
        ("shard_batches", n(m.shard_batches)),
        ("shard_fanouts", n(m.shard_fanouts)),
        (
            "shard_merge_time_ms",
            Json::Num(m.shard_merge_time.as_secs_f64() * 1000.0),
        ),
        (
            "shard_p95_ms",
            Json::Num(m.shard_latency.p95.as_secs_f64() * 1000.0),
        ),
        (
            "cost_model_specs",
            Json::Num(shared.cost_model.observed_specs() as f64),
        ),
        (
            "batch_time_ms",
            Json::Num(m.batch_time.as_secs_f64() * 1000.0),
        ),
        ("rows_per_second", Json::Num(m.rows_per_second())),
        ("answer_hit_rate", Json::Num(m.answer_hit_rate())),
        ("epoch_reuse_rate", Json::Num(m.epoch_reuse_rate())),
        (
            "in_flight_units",
            Json::Num(shared.admission.in_flight() as f64),
        ),
    ])
    .to_string()
}

/// `/query` (single spec) and `/batch` (spec list): parse, admit, submit, stream answers back
/// as chunks.  `batch: false` expects `{"spec": "Q1"}`, `batch: true` `{"specs": ["Q1", …]}`.
fn serve_queries(
    writer: &mut TcpStream,
    request: &Request,
    client: IpAddr,
    shared: &Shared,
    batch: bool,
) -> std::io::Result<()> {
    let specs = match parse_body_specs(&request.body, batch) {
        Ok(specs) => specs,
        Err(msg) => return write_response(writer, 400, &[], &error_body(&msg)),
    };
    if shared.stopping.load(Ordering::SeqCst) {
        return write_response(writer, 503, &[], &error_body("server is draining"));
    }

    // Admission: one permit covering the whole request, released when the responses are out.
    // Each query is charged its estimated evaluation cost — this spec's observed-latency EWMA
    // where the cost model has history, else the serving epoch's observed operators-per-query,
    // else a static plan-shape estimate — so the bounded queue meters admitted *work*, not
    // request count.
    let cost: u64 = specs
        .iter()
        .map(|entry| {
            shared.cost_model.estimate(&entry.label).unwrap_or_else(|| {
                shared
                    .epoch_for(entry.target)
                    .and_then(|epoch| shared.service.observed_query_cost(epoch))
                    .unwrap_or_else(|| static_query_cost(&entry.query))
            })
        })
        .sum();
    let permit = match shared.admission.admit(client, specs.len(), cost) {
        Ok(permit) => permit,
        Err(rejected) => {
            let retry = shared.admission.config().retry_after_secs;
            let msg = match rejected {
                Rejected::QueueFull => "admission queue full",
                Rejected::ClientThrottled => "client rate limit exceeded",
            };
            return write_response(
                writer,
                429,
                &[("retry-after", retry.to_string())],
                &error_body(msg),
            );
        }
    };

    // Submit everything, then flush once: one service batch per target schema touched.
    let mut tickets: Vec<(String, u64, Ticket)> = Vec::with_capacity(specs.len());
    for entry in specs {
        let Some(epoch) = shared.epoch_for(entry.target) else {
            let msg = format!("target schema '{}' is not served", entry.target);
            return write_response(writer, 400, &[], &error_body(&msg));
        };
        let static_cost = static_query_cost(&entry.query);
        match shared.service.submit(epoch, entry.query) {
            Ok(ticket) => tickets.push((entry.label, static_cost, ticket)),
            Err(err) => {
                return write_response(writer, 500, &[], &error_body(&err.to_string()));
            }
        }
    }
    shared.service.flush();

    // Stream the answers: each ticket's answer is rendered and written as its own chunk the
    // moment its batch resolves (chunked transfer encoding — no whole-response buffering).
    let mut out = ChunkedWriter::start(writer, 200)?;
    if batch {
        out.chunk("{\"answers\":[")?;
        for (i, (label, static_cost, ticket)) in tickets.into_iter().enumerate() {
            let rendered = match ticket.wait() {
                Ok(response) => {
                    observe_cost(shared, &label, &response, static_cost);
                    answer_json(&label, &response.answer).to_string()
                }
                Err(err) => error_body(&err.to_string()),
            };
            let prefix = if i > 0 { "," } else { "" };
            out.chunk(&format!("{prefix}{rendered}"))?;
        }
        out.chunk("]}")?;
    } else {
        let (label, static_cost, ticket) =
            tickets.pop().expect("single-query request has one ticket");
        match ticket.wait() {
            Ok(response) => {
                observe_cost(shared, &label, &response, static_cost);
                let served = match response.served_from {
                    ServedFrom::Evaluated => "evaluated",
                    ServedFrom::AnswerCache => "answer-cache",
                    ServedFrom::BatchDedup => "batch-dedup",
                };
                out.chunk(
                    &Json::obj([
                        ("answer", answer_json(&label, &response.answer)),
                        ("served_from", Json::Str(served.into())),
                        ("batch", Json::Num(response.batch as f64)),
                    ])
                    .to_string(),
                )?;
            }
            Err(err) => out.chunk(&error_body(&err.to_string()))?,
        }
    }
    out.finish()?;
    drop(permit);
    Ok(())
}

/// Feeds one answered query back into the cost model.  Cache hits and in-batch duplicates
/// record no evaluation time; folding their zero latency in would teach the model that the
/// spec is free, so only evaluated responses observe.
fn observe_cost(
    shared: &Shared,
    label: &str,
    response: &urm_service::QueryResponse,
    static_cost: u64,
) {
    if response.served_from == ServedFrom::Evaluated && !response.metrics.total_time.is_zero() {
        shared
            .cost_model
            .observe(label, response.metrics.total_time, static_cost);
    }
}

/// Static admission-cost estimate for a query on an epoch with no observed history yet: joins
/// dominate evaluation, so the relation count enters squared; predicates add linear work.  The
/// scale matches [`QueryService::observed_query_cost`] (source operators per query), so warm
/// and cold estimates mix in one queue.
fn static_query_cost(query: &urm_core::TargetQuery) -> u64 {
    let relations = query.relations().len() as u64;
    1 + query.predicates().len() as u64 + relations * relations
}

fn parse_body_specs(
    body: &[u8],
    batch: bool,
) -> Result<Vec<urm_datagen::replay::WorkloadEntry>, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let doc = Json::parse(text).map_err(|e| format!("bad JSON body: {e}"))?;
    let specs: Vec<&str> = if batch {
        doc.get("specs")
            .and_then(Json::as_arr)
            .ok_or("expected {\"specs\": [\"Q1\", ...]}")?
            .iter()
            .map(|s| s.as_str().ok_or("specs must be strings"))
            .collect::<Result<_, _>>()?
    } else {
        vec![doc
            .get("spec")
            .and_then(Json::as_str)
            .ok_or("expected {\"spec\": \"Q1\"}")?]
    };
    if specs.is_empty() {
        return Err("empty spec list".into());
    }
    specs
        .into_iter()
        .map(|s| parse_query_spec(s).map_err(|e| format!("bad spec '{s}': {e}")))
        .collect()
}
