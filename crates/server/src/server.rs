//! The HTTP front door: accept loop, routing, graceful shutdown.
//!
//! One thread accepts, one thread per connection serves HTTP/1.1 with keep-alive.  Requests
//! pass the [`AdmissionController`] before touching the [`QueryService`]; admitted queries go
//! through the service's normal batch path (and so share its answer cache, epoch DAGs and the
//! two-stage bind/execute pipeline).  Shutdown is **draining**: the listener closes first, then
//! in-flight connections get [`DRAIN_GRACE`] to finish their current request before the server
//! returns — no accepted query is abandoned.

use crate::admission::{AdmissionController, CostModel, Rejected};
use crate::http::{
    read_request, write_response, write_response_typed, ChunkedWriter, HttpError, Request,
};
use crate::json::Json;
use crate::wire::{answer_json, parse_query_spec};
use std::io::BufReader;
use std::net::{IpAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use urm_datagen::scenario::TargetSchemaKind;
use urm_service::{
    EpochId, HistSnapshot, Histogram, MetricKind, PromWriter, QueryService, ServedFrom, Ticket,
    Tracer,
};

/// How long [`UrmServer::shutdown`] waits for in-flight connections before giving up on them.
pub const DRAIN_GRACE: Duration = Duration::from_secs(30);

struct Shared {
    service: QueryService,
    /// The epoch serving each target schema (registered by the caller before start).
    epochs: Vec<(TargetSchemaKind, EpochId)>,
    admission: AdmissionController,
    /// Per-spec observed-latency cost model: admission charges what a spec has actually been
    /// costing, falling back to the epoch's observed operators-per-query, then to the static
    /// plan-shape estimate.
    cost_model: CostModel,
    /// When the server started — `/healthz` reports the uptime.
    started: Instant,
    /// Per-endpoint wall-clock latency histograms (admission to last byte), exposed as the
    /// `urm_http_request_duration_ns` family on `GET /metrics`.
    endpoints: EndpointHistograms,
    stopping: AtomicBool,
    /// Open connections, for the drain barrier.
    connections: AtomicUsize,
    drained: Condvar,
    drain_lock: Mutex<()>,
}

/// Log-bucketed request-latency histograms, one per serving endpoint.  Lock-free to record
/// (atomic bucket increments), so the per-request cost is a clock read and two adds.
#[derive(Default)]
struct EndpointHistograms {
    query: Histogram,
    batch: Histogram,
}

impl EndpointHistograms {
    fn snapshot(&self) -> Vec<(&'static str, HistSnapshot)> {
        vec![
            ("query", self.query.snapshot()),
            ("batch", self.batch.snapshot()),
        ]
    }
}

impl Shared {
    fn epoch_for(&self, target: TargetSchemaKind) -> Option<EpochId> {
        self.epochs
            .iter()
            .find(|(kind, _)| *kind == target)
            .map(|(_, id)| *id)
    }
}

/// A running HTTP server; dropping it (or calling [`shutdown`](UrmServer::shutdown)) drains
/// and stops it.
pub struct UrmServer {
    shared: Arc<Shared>,
    addr: std::net::SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl UrmServer {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts serving the given epochs.
    ///
    /// `epochs` maps each target schema to the [`EpochId`] the caller registered with
    /// `service` — specs addressing an unlisted schema are answered 400.
    pub fn start(
        addr: &str,
        service: QueryService,
        epochs: Vec<(TargetSchemaKind, EpochId)>,
        admission: AdmissionController,
    ) -> std::io::Result<UrmServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            service,
            epochs,
            admission,
            cost_model: CostModel::new(),
            started: Instant::now(),
            endpoints: EndpointHistograms::default(),
            stopping: AtomicBool::new(false),
            connections: AtomicUsize::new(0),
            drained: Condvar::new(),
            drain_lock: Mutex::new(()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("urm-server-accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared))?;
        Ok(UrmServer {
            shared,
            addr: local,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The service metrics (same snapshot `/metrics.json` serves).
    #[must_use]
    pub fn metrics(&self) -> urm_service::ServiceMetrics {
        self.shared.service.metrics()
    }

    /// Stops accepting, drains in-flight connections (bounded by [`DRAIN_GRACE`]), flushes the
    /// service's pending batches and joins its workers.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shared.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        // The accept thread is blocked in `accept`; a throwaway connection unblocks it so it
        // can observe `stopping` and exit, closing the listener.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        // Drain: every connection opened before the listener closed gets to finish its
        // current request (keep-alive waits are cut short by the read timeout).
        let deadline = Instant::now() + DRAIN_GRACE;
        let mut guard = self.shared.drain_lock.lock().unwrap();
        while self.shared.connections.load(Ordering::SeqCst) > 0 {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            let (g, _) = self.shared.drained.wait_timeout(guard, left).unwrap();
            guard = g;
        }
        drop(guard);
        self.shared.service.flush();
    }
}

impl Drop for UrmServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stopping.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let conn_shared = Arc::clone(shared);
        shared.connections.fetch_add(1, Ordering::SeqCst);
        let result = std::thread::Builder::new()
            .name("urm-server-conn".into())
            .spawn(move || {
                handle_connection(stream, &conn_shared);
                let _guard = conn_shared.drain_lock.lock().unwrap();
                conn_shared.connections.fetch_sub(1, Ordering::SeqCst);
                conn_shared.drained.notify_all();
            });
        if result.is_err() {
            // Spawn failure: undo the increment or the drain barrier waits forever.
            let _guard = shared.drain_lock.lock().unwrap();
            shared.connections.fetch_sub(1, Ordering::SeqCst);
            shared.drained.notify_all();
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let config = shared.admission.config().clone();
    if stream.set_read_timeout(Some(config.read_timeout)).is_err()
        || stream
            .set_write_timeout(Some(config.write_timeout))
            .is_err()
        || stream.set_nodelay(true).is_err()
    {
        return;
    }
    let client: IpAddr = match stream.peer_addr() {
        Ok(peer) => peer.ip(),
        Err(_) => return,
    };
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);

    // Keep-alive loop: serve requests until the peer hangs up, errors, or the server drains.
    loop {
        let request = match read_request(&mut reader, config.max_body_bytes) {
            Ok(request) => request,
            Err(HttpError::Closed) => return,
            Err(err) if err.is_timeout() => {
                // Slow-loris (or an idle keep-alive connection during drain): tell the peer
                // and hang up.  The write is best-effort — the peer may be gone.
                let _ = write_response(&mut writer, 408, &[], &error_body("read timeout"));
                return;
            }
            Err(HttpError::Io(_)) => return,
            Err(HttpError::Malformed(msg)) => {
                let _ = write_response(&mut writer, 400, &[], &error_body(&msg));
                return; // framing is unrecoverable after a malformed head
            }
            Err(HttpError::BodyTooLarge { declared, limit }) => {
                let msg = format!("body of {declared} bytes exceeds the {limit}-byte limit");
                let _ = write_response(&mut writer, 413, &[], &error_body(&msg));
                return; // the unread body still sits in the socket; drop the connection
            }
        };
        if respond(&mut writer, &request, client, shared).is_err() {
            return;
        }
        if shared.stopping.load(Ordering::SeqCst) {
            return; // drained: finish this request, take no more on this connection
        }
    }
}

fn error_body(message: &str) -> String {
    Json::obj([("error", Json::Str(message.to_string()))]).to_string()
}

fn respond(
    writer: &mut TcpStream,
    request: &Request,
    client: IpAddr,
    shared: &Shared,
) -> std::io::Result<()> {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => write_response(writer, 200, &[], &healthz_body(shared)),
        ("GET", "/metrics") => write_response_typed(
            writer,
            200,
            "text/plain; version=0.0.4",
            &[],
            &prometheus_body(shared),
        ),
        ("GET", "/metrics.json") => write_response(writer, 200, &[], &metrics_body(shared)),
        ("GET", "/debug/traces") => write_response(writer, 200, &[], &traces_body(shared)),
        ("POST", "/query") => {
            let start = Instant::now();
            let result = serve_queries(writer, request, client, shared, false);
            shared.endpoints.query.record_duration(start.elapsed());
            result
        }
        ("POST", "/batch") => {
            let start = Instant::now();
            let result = serve_queries(writer, request, client, shared, true);
            shared.endpoints.batch.record_duration(start.elapsed());
            result
        }
        ("GET" | "POST", _) => write_response(writer, 404, &[], &error_body("unknown path")),
        _ => write_response(writer, 405, &[], &error_body("method not allowed")),
    }
}

fn healthz_body(shared: &Shared) -> String {
    Json::obj([
        ("status", Json::Str("ok".into())),
        (
            "uptime_seconds",
            Json::Num(shared.started.elapsed().as_secs() as f64),
        ),
        ("shards", Json::Num(shared.service.config().shards as f64)),
        ("epoch_count", Json::Num(shared.epochs.len() as f64)),
        (
            "in_flight_units",
            Json::Num(shared.admission.in_flight() as f64),
        ),
        (
            "epochs",
            Json::Arr(
                shared
                    .epochs
                    .iter()
                    .map(|(kind, id)| {
                        Json::obj([
                            ("target", Json::Str(kind.to_string())),
                            ("epoch", Json::Num(id.raw() as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .to_string()
}

/// The JSON metrics snapshot (`GET /metrics.json`; `GET /metrics` until this release — the
/// Prometheus exposition took over that path).  Every [`ServiceMetrics::fields`] entry is
/// emitted under its canonical name — durations as integer `*_ns` — followed by the legacy
/// millisecond duplicates (`*_ms`, kept for pre-existing dashboards) and the two server-side
/// gauges the service snapshot does not carry.
fn metrics_body(shared: &Shared) -> String {
    let m = shared.service.metrics();
    let mut entries: Vec<(&str, Json)> = m
        .fields()
        .into_iter()
        .map(|(name, _, value)| (name, Json::Num(value)))
        .collect();
    entries.extend([
        (
            "shard_merge_time_ms",
            Json::Num(m.shard_merge_time.as_secs_f64() * 1000.0),
        ),
        (
            "shard_p95_ms",
            Json::Num(m.shard_latency.p95.as_secs_f64() * 1000.0),
        ),
        (
            "batch_time_ms",
            Json::Num(m.batch_time.as_secs_f64() * 1000.0),
        ),
        (
            "cost_model_specs",
            Json::Num(shared.cost_model.observed_specs() as f64),
        ),
        (
            "in_flight_units",
            Json::Num(shared.admission.in_flight() as f64),
        ),
    ]);
    Json::obj(entries).to_string()
}

/// The Prometheus text exposition (`GET /metrics`): every [`ServiceMetrics::fields`] entry
/// as `urm_<name>`, the two server-side gauges, and the stage / endpoint latency histogram
/// families (log-bucketed, nanosecond units).
fn prometheus_body(shared: &Shared) -> String {
    let m = shared.service.metrics();
    let mut w = PromWriter::new();
    for (name, kind, value) in m.fields() {
        w.metric(
            &format!("urm_{name}"),
            kind,
            "URM service metric; see the ServiceMetrics field docs",
            value,
        );
    }
    w.metric(
        "urm_cost_model_specs",
        MetricKind::Gauge,
        "Distinct query specs with an observed-latency admission cost",
        shared.cost_model.observed_specs() as f64,
    );
    w.metric(
        "urm_in_flight_units",
        MetricKind::Gauge,
        "Admitted-but-unanswered cost units in the admission queue",
        shared.admission.in_flight() as f64,
    );
    let stages = shared.service.stage_histograms();
    let series: Vec<(&str, &HistSnapshot)> = stages.iter().map(|(n, s)| (*n, s)).collect();
    w.histogram(
        "urm_stage_duration_ns",
        "Per-stage batch latency in nanoseconds (log-bucketed)",
        "stage",
        &series,
    );
    let endpoints = shared.endpoints.snapshot();
    let series: Vec<(&str, &HistSnapshot)> = endpoints.iter().map(|(n, s)| (*n, s)).collect();
    w.histogram(
        "urm_http_request_duration_ns",
        "Per-endpoint HTTP request latency in nanoseconds (log-bucketed)",
        "endpoint",
        &series,
    );
    w.finish()
}

/// The bounded ring of recently finished traces (`GET /debug/traces`), newest last.  Spans
/// carry integer-nanosecond `start_ns`/`dur_ns` and parent span ids (0 = root).
fn traces_body(shared: &Shared) -> String {
    let traces: Vec<String> = shared
        .service
        .finished_traces()
        .iter()
        .map(urm_service::TraceReport::to_json_object)
        .collect();
    format!("{{\"traces\":[{}]}}", traces.join(","))
}

/// `/query` (single spec) and `/batch` (spec list): parse, admit, submit, stream answers back
/// as chunks.  `batch: false` expects `{"spec": "Q1"}`, `batch: true` `{"specs": ["Q1", …]}`.
fn serve_queries(
    writer: &mut TcpStream,
    request: &Request,
    client: IpAddr,
    shared: &Shared,
    batch: bool,
) -> std::io::Result<()> {
    let specs = match parse_body_specs(&request.body, batch) {
        Ok(specs) => specs,
        Err(msg) => return write_response(writer, 400, &[], &error_body(&msg)),
    };
    if shared.stopping.load(Ordering::SeqCst) {
        return write_response(writer, 503, &[], &error_body("server is draining"));
    }

    // An `X-Trace-Id` header force-traces the request (regardless of `--trace-sample`): the
    // batch it lands in records a full span tree under that id, retrievable from
    // `GET /debug/traces`, and the response echoes the id back.
    let trace_id = request.header("x-trace-id").map(str::to_string);
    let tracer = match &trace_id {
        Some(id) => Tracer::enabled(id.clone()),
        None => Tracer::disabled(),
    };

    // Admission: one permit covering the whole request, released when the responses are out.
    // Each query is charged its estimated evaluation cost — this spec's observed-latency EWMA
    // where the cost model has history, else the serving epoch's observed operators-per-query,
    // else a static plan-shape estimate — so the bounded queue meters admitted *work*, not
    // request count.
    let cost: u64 = specs
        .iter()
        .map(|entry| {
            shared.cost_model.estimate(&entry.label).unwrap_or_else(|| {
                shared
                    .epoch_for(entry.target)
                    .and_then(|epoch| shared.service.observed_query_cost(epoch))
                    .unwrap_or_else(|| static_query_cost(&entry.query))
            })
        })
        .sum();
    let mut admission_span = tracer.span("admission");
    admission_span.tag("queries", specs.len() as u64);
    admission_span.tag("cost", cost);
    let admitted = shared.admission.admit(client, specs.len(), cost);
    drop(admission_span);
    let permit = match admitted {
        Ok(permit) => permit,
        Err(rejected) => {
            let retry = shared.admission.config().retry_after_secs;
            let msg = match rejected {
                Rejected::QueueFull => "admission queue full",
                Rejected::ClientThrottled => "client rate limit exceeded",
            };
            return write_response(
                writer,
                429,
                &[("retry-after", retry.to_string())],
                &error_body(msg),
            );
        }
    };

    // Submit everything, then flush once: one service batch per target schema touched.
    let mut tickets: Vec<(String, u64, Ticket)> = Vec::with_capacity(specs.len());
    for entry in specs {
        let Some(epoch) = shared.epoch_for(entry.target) else {
            let msg = format!("target schema '{}' is not served", entry.target);
            return write_response(writer, 400, &[], &error_body(&msg));
        };
        let static_cost = static_query_cost(&entry.query);
        match shared
            .service
            .submit_traced(epoch, entry.query, tracer.clone())
        {
            Ok(ticket) => tickets.push((entry.label, static_cost, ticket)),
            Err(err) => {
                return write_response(writer, 500, &[], &error_body(&err.to_string()));
            }
        }
    }
    shared.service.flush();

    // Stream the answers: each ticket's answer is rendered and written as its own chunk the
    // moment its batch resolves (chunked transfer encoding — no whole-response buffering).
    let trace_echo: Vec<(&str, String)> = trace_id
        .as_ref()
        .map(|id| ("x-trace-id", id.clone()))
        .into_iter()
        .collect();
    let mut out = ChunkedWriter::start_with_headers(writer, 200, &trace_echo)?;
    if batch {
        out.chunk("{\"answers\":[")?;
        for (i, (label, static_cost, ticket)) in tickets.into_iter().enumerate() {
            let rendered = match ticket.wait() {
                Ok(response) => {
                    observe_cost(shared, &label, &response, static_cost);
                    answer_json(&label, &response.answer).to_string()
                }
                Err(err) => error_body(&err.to_string()),
            };
            let prefix = if i > 0 { "," } else { "" };
            out.chunk(&format!("{prefix}{rendered}"))?;
        }
        out.chunk("]}")?;
    } else {
        let (label, static_cost, ticket) =
            tickets.pop().expect("single-query request has one ticket");
        match ticket.wait() {
            Ok(response) => {
                observe_cost(shared, &label, &response, static_cost);
                let served = match response.served_from {
                    ServedFrom::Evaluated => "evaluated",
                    ServedFrom::AnswerCache => "answer-cache",
                    ServedFrom::BatchDedup => "batch-dedup",
                };
                out.chunk(
                    &Json::obj([
                        ("answer", answer_json(&label, &response.answer)),
                        ("served_from", Json::Str(served.into())),
                        ("batch", Json::Num(response.batch as f64)),
                    ])
                    .to_string(),
                )?;
            }
            Err(err) => out.chunk(&error_body(&err.to_string()))?,
        }
    }
    out.finish()?;
    drop(permit);
    Ok(())
}

/// Feeds one answered query back into the cost model.  Cache hits and in-batch duplicates
/// record no evaluation time; folding their zero latency in would teach the model that the
/// spec is free, so only evaluated responses observe.
fn observe_cost(
    shared: &Shared,
    label: &str,
    response: &urm_service::QueryResponse,
    static_cost: u64,
) {
    if response.served_from == ServedFrom::Evaluated && !response.metrics.total_time.is_zero() {
        shared
            .cost_model
            .observe(label, response.metrics.total_time, static_cost);
    }
}

/// Static admission-cost estimate for a query on an epoch with no observed history yet: joins
/// dominate evaluation, so the relation count enters squared; predicates add linear work.  The
/// scale matches [`QueryService::observed_query_cost`] (source operators per query), so warm
/// and cold estimates mix in one queue.
fn static_query_cost(query: &urm_core::TargetQuery) -> u64 {
    let relations = query.relations().len() as u64;
    1 + query.predicates().len() as u64 + relations * relations
}

fn parse_body_specs(
    body: &[u8],
    batch: bool,
) -> Result<Vec<urm_datagen::replay::WorkloadEntry>, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let doc = Json::parse(text).map_err(|e| format!("bad JSON body: {e}"))?;
    let specs: Vec<&str> = if batch {
        doc.get("specs")
            .and_then(Json::as_arr)
            .ok_or("expected {\"specs\": [\"Q1\", ...]}")?
            .iter()
            .map(|s| s.as_str().ok_or("specs must be strings"))
            .collect::<Result<_, _>>()?
    } else {
        vec![doc
            .get("spec")
            .and_then(Json::as_str)
            .ok_or("expected {\"spec\": \"Q1\"}")?]
    };
    if specs.is_empty() {
        return Err("empty spec list".into());
    }
    specs
        .into_iter()
        .map(|s| parse_query_spec(s).map_err(|e| format!("bad spec '{s}': {e}")))
        .collect()
}
