//! # urm-server
//!
//! The HTTP front door of the URM workspace: a dependency-free HTTP/1.1 server (plain
//! `std::net::TcpListener`, thread per connection — no hyper, no tokio, keeping the
//! workspace's no-registry constraint) in front of the [`urm_service::QueryService`] batch
//! server.
//!
//! Endpoints:
//!
//! * `POST /query` — `{"spec": "Q4"}`: one workload-spec query (`Q1`–`Q10`, `sel:N`, `prod:N`,
//!   `join:N`, `scale:N`), answered with the canonical answer rendering plus how it was served;
//! * `POST /batch` — `{"specs": ["Q1", "join:3", …]}`: many queries in one request, submitted
//!   as one service batch per target schema and **streamed** back with chunked transfer
//!   encoding as the batches resolve;
//! * `GET /metrics` — the [`ServiceMetrics`](urm_service::ServiceMetrics) snapshot (including
//!   spill and epoch-reuse counters) as JSON;
//! * `GET /healthz` — liveness plus the served epochs.
//!
//! In front of the service sits an [`admission`] layer: a bounded in-flight budget and
//! per-client token buckets, both answering **429 + `Retry-After`** when closed, plus a body
//! size cap and read/write socket timeouts (slow-loris connections get 408).  Shutdown drains:
//! the listener closes first, in-flight requests finish, pending batches flush.
//!
//! The binary (`urm-server`) generates a [`urm_datagen`] scenario, registers it as an epoch
//! and serves it; the open-loop latency harness (`http_bench` in `urm-bench`) drives the same
//! server over loopback and asserts the HTTP answers are byte-identical to an in-process
//! replay.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod admission;
pub mod client;
pub mod http;
pub mod json;
pub mod server;
pub mod wire;

pub use admission::{AdmissionConfig, AdmissionController, CostModel, Permit, Rejected};
pub use client::{request_once, HttpClient, HttpResponse};
pub use json::Json;
pub use server::{UrmServer, DRAIN_GRACE};
pub use wire::{answer_json, parse_query_spec};
