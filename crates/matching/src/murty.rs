//! Murty's k-best assignment algorithm.
//!
//! The paper needs the `h` highest-scoring one-to-one mappings between the attributes of two
//! schemas ([9], [10] obtain them with a k-best bipartite matching procedure).  Murty's
//! algorithm enumerates assignments in non-increasing order of total weight by repeatedly
//! partitioning the solution space: each popped solution spawns child subproblems that force a
//! prefix of its pairs and forbid the next pair, so every assignment is generated exactly once.

use crate::hungarian::{max_weight_assignment, Assignment, FORBIDDEN_WEIGHT};
use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};

/// A solution produced by the enumeration: the matched pairs and their total weight.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedAssignment {
    /// Matched `(row, col)` pairs, sorted by row.
    pub pairs: Vec<(usize, usize)>,
    /// Total weight of the matched pairs.
    pub total_weight: f64,
}

/// A node of Murty's search tree: a subproblem with forced and forbidden edges plus the best
/// assignment inside that subproblem.
#[derive(Debug, Clone)]
struct Node {
    forced: Vec<(usize, usize)>,
    forbidden: Vec<(usize, usize)>,
    solution: Assignment,
}

impl Node {
    fn weight(&self) -> f64 {
        self.solution.total_weight
    }
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.weight() == other.weight()
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        self.weight().total_cmp(&other.weight())
    }
}

/// Solves the assignment problem with the given constraints applied to a copy of `weights`.
fn solve_constrained(
    weights: &[Vec<f64>],
    forced: &[(usize, usize)],
    forbidden: &[(usize, usize)],
) -> Option<Assignment> {
    let mut w: Vec<Vec<f64>> = weights.to_vec();
    for &(r, c) in forbidden {
        if r < w.len() && c < w[r].len() {
            w[r][c] = FORBIDDEN_WEIGHT;
        }
    }
    for &(fr, fc) in forced {
        if fr >= w.len() || fc >= w[fr].len() || w[fr][fc] <= 0.0 {
            return None; // forcing a non-existent or forbidden edge makes the node infeasible
        }
        // Forbid every alternative for the forced row and column; the forced edge keeps its
        // weight, so any optimal solution of the subproblem must use it.
        for c in 0..w[fr].len() {
            if c != fc {
                w[fr][c] = FORBIDDEN_WEIGHT;
            }
        }
        for (r, row) in w.iter_mut().enumerate() {
            if r != fr && fc < row.len() {
                row[fc] = FORBIDDEN_WEIGHT;
            }
        }
    }
    let solution = max_weight_assignment(&w);
    // The node is only feasible if every forced edge actually appears in the solution.
    for &(fr, fc) in forced {
        if solution.row_to_col.get(fr).copied().flatten() != Some(fc) {
            return None;
        }
    }
    // Recompute the weight against the *original* matrix (constrained copies may have replaced
    // entries, though forced edges keep their weight so this is normally identical).
    let mut total = 0.0;
    for (r, c) in solution.pairs() {
        total += weights[r][c];
    }
    Some(Assignment {
        row_to_col: solution.row_to_col,
        total_weight: total,
    })
}

/// Enumerates the `k` best one-to-one partial assignments by total weight.
///
/// Assignments that match the same set of `(row, col)` pairs are reported once.  Fewer than `k`
/// results are returned when the weight matrix does not admit `k` distinct non-empty
/// assignments.
#[must_use]
pub fn k_best_assignments(weights: &[Vec<f64>], k: usize) -> Vec<RankedAssignment> {
    let mut results: Vec<RankedAssignment> = Vec::new();
    if k == 0 || weights.is_empty() {
        return results;
    }

    let mut seen: BTreeSet<Vec<(usize, usize)>> = BTreeSet::new();
    let mut heap: BinaryHeap<Node> = BinaryHeap::new();

    let root_solution = max_weight_assignment(weights);
    if root_solution.matched_count() == 0 {
        return results;
    }
    heap.push(Node {
        forced: Vec::new(),
        forbidden: Vec::new(),
        solution: root_solution,
    });

    while let Some(node) = heap.pop() {
        if results.len() >= k {
            break;
        }
        let mut pairs = node.solution.pairs();
        pairs.sort_unstable();
        let is_new = seen.insert(pairs.clone());
        if is_new {
            results.push(RankedAssignment {
                pairs: pairs.clone(),
                total_weight: node.solution.total_weight,
            });
        }

        // Partition the remaining solution space of this node (Murty's step): child `i` keeps
        // pairs[0..i] forced, forbids pairs[i], and inherits the node's constraints.
        for (i, &pair) in pairs.iter().enumerate() {
            let mut forced = node.forced.clone();
            forced.extend_from_slice(&pairs[..i]);
            forced.sort_unstable();
            forced.dedup();
            let mut forbidden = node.forbidden.clone();
            forbidden.push(pair);
            if let Some(solution) = solve_constrained(weights, &forced, &forbidden) {
                if solution.matched_count() > 0 {
                    heap.push(Node {
                        forced,
                        forbidden,
                        solution,
                    });
                }
            }
        }
    }

    results
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weights_small() -> Vec<Vec<f64>> {
        vec![vec![0.9, 0.4], vec![0.8, 0.7]]
    }

    #[test]
    fn first_solution_is_the_optimum() {
        let sols = k_best_assignments(&weights_small(), 3);
        assert!(!sols.is_empty());
        assert!((sols[0].total_weight - 1.6).abs() < 1e-9);
    }

    #[test]
    fn weights_are_non_increasing() {
        let w = vec![
            vec![0.85, 0.3, 0.1],
            vec![0.83, 0.75, 0.2],
            vec![0.4, 0.65, 0.81],
        ];
        let sols = k_best_assignments(&w, 10);
        assert!(sols.len() >= 3);
        for pair in sols.windows(2) {
            assert!(
                pair[0].total_weight >= pair[1].total_weight - 1e-9,
                "solutions out of order: {pair:?}"
            );
        }
    }

    #[test]
    fn solutions_are_distinct() {
        let w = vec![
            vec![0.85, 0.3, 0.1],
            vec![0.83, 0.75, 0.2],
            vec![0.4, 0.65, 0.81],
        ];
        let sols = k_best_assignments(&w, 12);
        let mut sets: Vec<_> = sols.iter().map(|s| s.pairs.clone()).collect();
        sets.sort();
        let before = sets.len();
        sets.dedup();
        assert_eq!(before, sets.len());
    }

    #[test]
    fn second_best_differs_from_best_in_the_2x2_case() {
        let sols = k_best_assignments(&weights_small(), 2);
        assert_eq!(sols.len(), 2);
        assert_ne!(sols[0].pairs, sols[1].pairs);
        // Second best: either the identity with one edge dropped or the swapped permutation
        // (0.4 + 0.8 = 1.2); the swap is best.
        assert!((sols[1].total_weight - 1.2).abs() < 1e-9);
    }

    #[test]
    fn asking_for_more_than_exists_returns_what_exists() {
        let w = vec![vec![0.5]];
        let sols = k_best_assignments(&w, 10);
        // Only one non-empty assignment exists.
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0].pairs, vec![(0, 0)]);
    }

    #[test]
    fn zero_k_or_empty_matrix_is_empty() {
        assert!(k_best_assignments(&weights_small(), 0).is_empty());
        assert!(k_best_assignments(&[], 5).is_empty());
    }

    #[test]
    fn all_zero_matrix_has_no_assignments() {
        let w = vec![vec![0.0, 0.0], vec![0.0, 0.0]];
        assert!(k_best_assignments(&w, 3).is_empty());
    }

    #[test]
    fn enumeration_matches_brute_force_on_3x3() {
        let w = vec![
            vec![0.9, 0.2, 0.5],
            vec![0.8, 0.7, 0.1],
            vec![0.3, 0.6, 0.4],
        ];
        let sols = k_best_assignments(&w, 50);
        // Brute force: all subsets of a full permutation reachable by dropping zero-weight pairs
        // collapse, but with all-positive weights the distinct assignments are exactly the ways
        // to pick a partial injective mapping.  We at least check that the best 6 full
        // permutations appear with correct relative order of their totals.
        let perms: [[usize; 3]; 6] = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        let mut perm_weights: Vec<f64> = perms
            .iter()
            .map(|p| (0..3).map(|r| w[r][p[r]]).sum())
            .collect();
        perm_weights.sort_by(|a, b| b.total_cmp(a));
        assert!((sols[0].total_weight - perm_weights[0]).abs() < 1e-9);
        // Every enumerated solution's weight is bounded by the optimum.
        for s in &sols {
            assert!(s.total_weight <= perm_weights[0] + 1e-9);
        }
    }

    #[test]
    fn forced_edges_respected_in_children() {
        // Regression test for the constrained solver: forcing (0,1) must exclude (0,0).
        let w = weights_small();
        let sol = solve_constrained(&w, &[(0, 1)], &[]).unwrap();
        assert_eq!(sol.row_to_col[0], Some(1));
    }

    #[test]
    fn forbidding_the_only_edge_makes_node_infeasible() {
        let w = vec![vec![0.5]];
        let sol = solve_constrained(&w, &[], &[(0, 0)]);
        assert!(sol.is_none() || sol.unwrap().matched_count() == 0);
    }
}
