//! Lightweight schema descriptions used on both sides of a matching.

use serde::{Deserialize, Serialize};
use std::fmt;
use urm_storage::AttrRef;

/// A schema as seen by the matcher: a named list of relations, each with attribute names.
///
/// Data types are irrelevant to matching (COMA++ works on names and structure), so this is a
/// deliberately thinner view than [`urm_storage::Schema`].  The same `SchemaDef` is used for the
/// TPC-H-like source schema and for the Excel/Noris/Paragon target schemas.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchemaDef {
    name: String,
    relations: Vec<(String, Vec<String>)>,
}

impl SchemaDef {
    /// Creates an empty schema definition.
    pub fn new(name: impl Into<String>) -> Self {
        SchemaDef {
            name: name.into(),
            relations: Vec::new(),
        }
    }

    /// Adds a relation with the given attributes (builder style).
    #[must_use]
    pub fn with_relation<I, S>(mut self, relation: impl Into<String>, attrs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.add_relation(relation, attrs);
        self
    }

    /// Adds a relation with the given attributes.
    pub fn add_relation<I, S>(&mut self, relation: impl Into<String>, attrs: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.relations
            .push((relation.into(), attrs.into_iter().map(Into::into).collect()));
    }

    /// The schema name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The relations and their attributes.
    #[must_use]
    pub fn relations(&self) -> &[(String, Vec<String>)] {
        &self.relations
    }

    /// Names of the relations.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.relations.iter().map(|(r, _)| r.as_str())
    }

    /// All attributes as qualified references, in declaration order.
    #[must_use]
    pub fn all_attributes(&self) -> Vec<AttrRef> {
        self.relations
            .iter()
            .flat_map(|(rel, attrs)| {
                attrs
                    .iter()
                    .map(move |a| AttrRef::new(rel.clone(), a.clone()))
            })
            .collect()
    }

    /// Total number of attributes across all relations.
    #[must_use]
    pub fn attribute_count(&self) -> usize {
        self.relations.iter().map(|(_, attrs)| attrs.len()).sum()
    }

    /// Whether the schema declares the given qualified attribute.
    #[must_use]
    pub fn contains(&self, attr: &AttrRef) -> bool {
        self.relations
            .iter()
            .any(|(rel, attrs)| *rel == attr.alias && attrs.contains(&attr.attr))
    }

    /// Attributes of a particular relation.
    #[must_use]
    pub fn attributes_of(&self, relation: &str) -> Option<&[String]> {
        self.relations
            .iter()
            .find(|(r, _)| r == relation)
            .map(|(_, attrs)| attrs.as_slice())
    }
}

impl fmt::Display for SchemaDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "schema {} ({} attributes)",
            self.name,
            self.attribute_count()
        )?;
        for (rel, attrs) in &self.relations {
            writeln!(f, "  {rel}({})", attrs.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn person_schema() -> SchemaDef {
        SchemaDef::new("Target")
            .with_relation("Person", ["pname", "phone", "addr", "nation", "gender"])
            .with_relation("Order", ["sname", "item", "status", "price", "total"])
    }

    #[test]
    fn attribute_count_and_listing() {
        let s = person_schema();
        assert_eq!(s.attribute_count(), 10);
        let attrs = s.all_attributes();
        assert_eq!(attrs.len(), 10);
        assert_eq!(attrs[0], AttrRef::new("Person", "pname"));
        assert_eq!(attrs[9], AttrRef::new("Order", "total"));
    }

    #[test]
    fn contains_checks_relation_and_attribute() {
        let s = person_schema();
        assert!(s.contains(&AttrRef::new("Person", "phone")));
        assert!(!s.contains(&AttrRef::new("Person", "price")));
        assert!(!s.contains(&AttrRef::new("Ghost", "phone")));
    }

    #[test]
    fn attributes_of_relation() {
        let s = person_schema();
        assert_eq!(s.attributes_of("Order").unwrap().len(), 5);
        assert!(s.attributes_of("Ghost").is_none());
    }

    #[test]
    fn relation_names_in_order() {
        let s = person_schema();
        let names: Vec<_> = s.relation_names().collect();
        assert_eq!(names, vec!["Person", "Order"]);
    }

    #[test]
    fn display_lists_relations() {
        let rendered = person_schema().to_string();
        assert!(rendered.contains("Person("));
        assert!(rendered.contains("10 attributes"));
    }
}
