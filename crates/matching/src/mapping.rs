//! Possible mappings.

use crate::Correspondence;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use urm_storage::AttrRef;

/// One possible mapping `m_i`: a one-to-one, partial set of correspondences between source and
/// target attributes, plus its similarity score and (normalised) probability of being correct.
///
/// Internally the mapping is indexed by *target* attribute, because query reformulation always
/// asks "which source attribute does this target attribute correspond to under `m_i`?".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mapping {
    id: usize,
    /// target attribute → (source attribute, correspondence score)
    by_target: BTreeMap<AttrRef, (AttrRef, f64)>,
    score: f64,
    probability: f64,
}

impl Mapping {
    /// Builds a mapping from correspondences.  The caller is responsible for the one-to-one
    /// property; [`Mapping::is_one_to_one`] can verify it.
    #[must_use]
    pub fn new(id: usize, correspondences: Vec<Correspondence>, probability: f64) -> Self {
        let mut by_target = BTreeMap::new();
        let mut score = 0.0;
        for c in correspondences {
            score += c.score;
            by_target.insert(c.target, (c.source, c.score));
        }
        Mapping {
            id,
            by_target,
            score,
            probability,
        }
    }

    /// The mapping's identifier (its rank in the top-h enumeration).
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// The mapping's total similarity score.
    #[must_use]
    pub fn score(&self) -> f64 {
        self.score
    }

    /// The probability `Pr(m_i)` that this mapping is the correct one.
    #[must_use]
    pub fn probability(&self) -> f64 {
        self.probability
    }

    /// Overrides the probability (used by the normalisation step of [`crate::MappingSet`]).
    pub fn set_probability(&mut self, p: f64) {
        self.probability = p;
    }

    /// Number of correspondences in the mapping.
    #[must_use]
    pub fn len(&self) -> usize {
        self.by_target.len()
    }

    /// Whether the mapping has no correspondences.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.by_target.is_empty()
    }

    /// The source attribute matched to a target attribute, if any (partial mappings may leave
    /// target attributes unmatched).
    #[must_use]
    pub fn source_for(&self, target: &AttrRef) -> Option<&AttrRef> {
        self.by_target.get(target).map(|(s, _)| s)
    }

    /// Whether this mapping contains the given `(source, target)` correspondence.
    #[must_use]
    pub fn contains_pair(&self, source: &AttrRef, target: &AttrRef) -> bool {
        self.by_target
            .get(target)
            .map(|(s, _)| s == source)
            .unwrap_or(false)
    }

    /// The correspondences of this mapping, sorted by target attribute.
    #[must_use]
    pub fn correspondences(&self) -> Vec<Correspondence> {
        self.by_target
            .iter()
            .map(|(t, (s, score))| Correspondence::new(s.clone(), t.clone(), *score))
            .collect()
    }

    /// The set of `(source, target)` pairs, used for o-ratio and set comparisons.
    #[must_use]
    pub fn pair_set(&self) -> BTreeSet<(AttrRef, AttrRef)> {
        self.by_target
            .iter()
            .map(|(t, (s, _))| (s.clone(), t.clone()))
            .collect()
    }

    /// The target attributes covered by this mapping.
    pub fn target_attributes(&self) -> impl Iterator<Item = &AttrRef> {
        self.by_target.keys()
    }

    /// Verifies the one-to-one property: no source attribute is matched to two target
    /// attributes (the map structure already guarantees uniqueness per target).
    #[must_use]
    pub fn is_one_to_one(&self) -> bool {
        let mut sources = BTreeSet::new();
        self.by_target
            .values()
            .all(|(s, _)| sources.insert(s.clone()))
    }

    /// The o-ratio (Jaccard overlap of correspondence pairs) between two mappings, as defined in
    /// Section VIII-B.1: `|m_i ∩ m_j| / |m_i ∪ m_j|`.
    #[must_use]
    pub fn o_ratio(&self, other: &Mapping) -> f64 {
        let a = self.pair_set();
        let b = other.pair_set();
        let union = a.union(&b).count();
        if union == 0 {
            return 1.0;
        }
        let inter = a.intersection(&b).count();
        inter as f64 / union as f64
    }

    /// Restricts the mapping to the correspondences whose target attribute is in `targets`.
    ///
    /// q-sharing partitions mappings by how they translate *the attributes used in the query*;
    /// this helper builds that projection.
    #[must_use]
    pub fn restricted_to(&self, targets: &[AttrRef]) -> Vec<(AttrRef, AttrRef)> {
        targets
            .iter()
            .filter_map(|t| self.by_target.get(t).map(|(s, _)| (t.clone(), s.clone())))
            .collect()
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{} (Pr={:.3}):", self.id, self.probability)?;
        for (t, (s, _)) in &self.by_target {
            write!(f, " ({}, {})", s, t)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The mappings of Figure 3 in the paper (restricted to the phone/addr/name attributes).
    pub(crate) fn figure3_mapping(id: usize, prob: f64, pairs: &[(&str, &str)]) -> Mapping {
        let correspondences = pairs
            .iter()
            .map(|(s, t)| {
                Correspondence::new(
                    AttrRef::new("Customer", s.to_string()),
                    AttrRef::new("Person", t.to_string()),
                    0.8,
                )
            })
            .collect();
        Mapping::new(id, correspondences, prob)
    }

    #[test]
    fn source_for_resolves_correspondences() {
        let m1 = figure3_mapping(
            1,
            0.3,
            &[("cname", "pname"), ("ophone", "phone"), ("oaddr", "addr")],
        );
        assert_eq!(
            m1.source_for(&AttrRef::new("Person", "phone")),
            Some(&AttrRef::new("Customer", "ophone"))
        );
        assert_eq!(m1.source_for(&AttrRef::new("Person", "gender")), None);
        assert!(m1.contains_pair(
            &AttrRef::new("Customer", "oaddr"),
            &AttrRef::new("Person", "addr")
        ));
        assert!(!m1.contains_pair(
            &AttrRef::new("Customer", "haddr"),
            &AttrRef::new("Person", "addr")
        ));
        assert_eq!(m1.len(), 3);
        assert!(m1.is_one_to_one());
    }

    #[test]
    fn o_ratio_matches_hand_computation() {
        // m1 and m3 of Figure 3 share (cname,pname) and (ophone,phone) out of 4 distinct pairs.
        let m1 = figure3_mapping(
            1,
            0.3,
            &[("cname", "pname"), ("ophone", "phone"), ("oaddr", "addr")],
        );
        let m3 = figure3_mapping(
            3,
            0.2,
            &[("cname", "pname"), ("ophone", "phone"), ("haddr", "addr")],
        );
        assert!((m1.o_ratio(&m3) - 2.0 / 4.0).abs() < 1e-9);
        // o-ratio is symmetric and 1 on identical mappings.
        assert_eq!(m1.o_ratio(&m3), m3.o_ratio(&m1));
        assert_eq!(m1.o_ratio(&m1), 1.0);
    }

    #[test]
    fn o_ratio_of_disjoint_mappings_is_zero() {
        let a = figure3_mapping(1, 0.5, &[("cname", "pname")]);
        let b = figure3_mapping(2, 0.5, &[("ophone", "phone")]);
        assert_eq!(a.o_ratio(&b), 0.0);
    }

    #[test]
    fn restricted_to_keeps_only_query_attributes() {
        let m = figure3_mapping(
            1,
            0.3,
            &[("cname", "pname"), ("ophone", "phone"), ("oaddr", "addr")],
        );
        let restriction = m.restricted_to(&[
            AttrRef::new("Person", "phone"),
            AttrRef::new("Person", "gender"),
        ]);
        assert_eq!(restriction.len(), 1);
        assert_eq!(restriction[0].1, AttrRef::new("Customer", "ophone"));
    }

    #[test]
    fn non_one_to_one_is_detected() {
        let m = Mapping::new(
            1,
            vec![
                Correspondence::from_parts(("C", "x"), ("T", "a"), 0.5),
                Correspondence::from_parts(("C", "x"), ("T", "b"), 0.5),
            ],
            1.0,
        );
        assert!(!m.is_one_to_one());
    }

    #[test]
    fn display_contains_pairs_and_probability() {
        let m = figure3_mapping(2, 0.2, &[("cname", "pname")]);
        let s = m.to_string();
        assert!(s.contains("m2"));
        assert!(s.contains("0.200"));
        assert!(s.contains("Customer.cname"));
    }

    #[test]
    fn score_is_sum_of_correspondence_scores() {
        let m = figure3_mapping(1, 0.3, &[("cname", "pname"), ("ophone", "phone")]);
        assert!((m.score() - 1.6).abs() < 1e-9);
    }
}
