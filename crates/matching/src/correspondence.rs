//! Attribute correspondences.

use serde::{Deserialize, Serialize};
use std::fmt;
use urm_storage::AttrRef;

/// A scored correspondence between one source attribute and one target attribute —
/// a single edge of Figure 1 in the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Correspondence {
    /// The source-schema attribute (e.g. `Customer.ophone`).
    pub source: AttrRef,
    /// The target-schema attribute (e.g. `Person.phone`).
    pub target: AttrRef,
    /// Similarity score produced by the matcher, in `[0, 1]`.
    pub score: f64,
}

impl Correspondence {
    /// Creates a new correspondence.
    #[must_use]
    pub fn new(source: AttrRef, target: AttrRef, score: f64) -> Self {
        Correspondence {
            source,
            target,
            score,
        }
    }

    /// Creates a correspondence from `(relation, attr)` string pairs.
    pub fn from_parts(
        source: (impl Into<String>, impl Into<String>),
        target: (impl Into<String>, impl Into<String>),
        score: f64,
    ) -> Self {
        Correspondence::new(
            AttrRef::new(source.0, source.1),
            AttrRef::new(target.0, target.1),
            score,
        )
    }

    /// The `(source, target)` attribute pair, ignoring the score.
    ///
    /// Mappings are compared by their correspondence *pairs* — two mappings that pair the same
    /// attributes are the same mapping even if scores were computed differently — so this is the
    /// identity used for o-ratio and partition computations.
    #[must_use]
    pub fn pair(&self) -> (AttrRef, AttrRef) {
        (self.source.clone(), self.target.clone())
    }
}

impl fmt::Display for Correspondence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} ↔ {}, {:.2})", self.source, self.target, self.score)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_parts_builds_refs() {
        let c = Correspondence::from_parts(("Customer", "ophone"), ("Person", "phone"), 0.85);
        assert_eq!(c.source, AttrRef::new("Customer", "ophone"));
        assert_eq!(c.target, AttrRef::new("Person", "phone"));
        assert!((c.score - 0.85).abs() < f64::EPSILON);
    }

    #[test]
    fn pair_drops_the_score() {
        let a = Correspondence::from_parts(("C", "x"), ("T", "y"), 0.9);
        let b = Correspondence::from_parts(("C", "x"), ("T", "y"), 0.1);
        assert_eq!(a.pair(), b.pair());
    }

    #[test]
    fn display_shows_both_sides() {
        let c = Correspondence::from_parts(("Customer", "cname"), ("Person", "pname"), 0.85);
        let s = c.to_string();
        assert!(s.contains("Customer.cname"));
        assert!(s.contains("Person.pname"));
    }
}
