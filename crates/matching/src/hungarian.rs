//! Maximum-weight bipartite assignment (Hungarian algorithm).
//!
//! The paper derives possible mappings by running "a bipartite matching algorithm" over the
//! similarity scores ([9], [10]).  This module provides the underlying solver: given a weight
//! matrix it finds the one-to-one assignment of rows to columns with maximum total weight.
//! [`crate::murty`] builds on it to enumerate the `h` best assignments.

/// Result of an assignment: for each row, the column it is matched to (or `None`), plus the
/// total weight of the matched pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// `row_to_col[i]` is the column assigned to row `i`, if any.
    pub row_to_col: Vec<Option<usize>>,
    /// Sum of the weights of all matched `(row, col)` pairs.
    pub total_weight: f64,
}

impl Assignment {
    /// The matched `(row, col)` pairs in row order.
    #[must_use]
    pub fn pairs(&self) -> Vec<(usize, usize)> {
        self.row_to_col
            .iter()
            .enumerate()
            .filter_map(|(r, c)| c.map(|c| (r, c)))
            .collect()
    }

    /// Number of matched pairs.
    #[must_use]
    pub fn matched_count(&self) -> usize {
        self.row_to_col.iter().filter(|c| c.is_some()).count()
    }
}

/// Weight below which an edge is considered forbidden / useless.
///
/// Murty's algorithm forbids edges by assigning them this weight; the solver then never reports
/// them as part of a solution (they are filtered out together with non-positive weights).
pub const FORBIDDEN_WEIGHT: f64 = -1.0e9;

/// Computes a maximum-weight one-to-one assignment between rows and columns.
///
/// Only pairs with strictly positive weight are reported in the result; rows that would only be
/// matched with zero or negative weight stay unmatched, which yields the *partial* one-to-one
/// correspondence sets the paper's data model requires.
///
/// The implementation is the classic `O(n³)` potential-based Hungarian algorithm on the
/// (negated) weight matrix, padded to a rectangular problem with rows ≤ columns.
#[must_use]
pub fn max_weight_assignment(weights: &[Vec<f64>]) -> Assignment {
    let rows = weights.len();
    if rows == 0 {
        return Assignment {
            row_to_col: Vec::new(),
            total_weight: 0.0,
        };
    }
    let cols = weights.iter().map(Vec::len).max().unwrap_or(0);
    if cols == 0 {
        return Assignment {
            row_to_col: vec![None; rows],
            total_weight: 0.0,
        };
    }

    // Every row always gets its own zero-weight dummy column, so "stay unmatched" is an explicit
    // choice.  This keeps the solver's objective equal to the reported (filtered) weight even
    // when edges are forbidden with [`FORBIDDEN_WEIGHT`], which Murty's enumeration relies on
    // for its best-first ordering.
    let padded_cols = cols + rows;
    let cost = |r: usize, c: usize| -> f64 {
        // Minimisation problem: cost = -weight; dummy columns cost 0 (equivalent to unmatched).
        if c < weights[r].len() {
            -weights[r][c]
        } else {
            0.0
        }
    };

    // e-maxx style Hungarian, 1-indexed.
    let n = rows;
    let m = padded_cols;
    let inf = f64::INFINITY;
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; m + 1];
    let mut p = vec![0usize; m + 1]; // p[j] = row matched to column j (0 = none)
    let mut way = vec![0usize; m + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=m {
                if used[j] {
                    continue;
                }
                let cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut row_to_col = vec![None; rows];
    let mut total_weight = 0.0;
    for (j, &i) in p.iter().enumerate().skip(1) {
        if i == 0 {
            continue;
        }
        let (r, c) = (i - 1, j - 1);
        if c < weights[r].len() {
            let w = weights[r][c];
            // Keep only genuinely useful matches: positive weight (forbidden edges carry a
            // large negative weight and fail the same test).
            if w > 0.0 {
                row_to_col[r] = Some(c);
                total_weight += w;
            }
        }
    }
    Assignment {
        row_to_col,
        total_weight,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} != {b}");
    }

    #[test]
    fn empty_matrix() {
        let a = max_weight_assignment(&[]);
        assert!(a.row_to_col.is_empty());
        assert_close(a.total_weight, 0.0);
    }

    #[test]
    fn single_cell() {
        let a = max_weight_assignment(&[vec![0.7]]);
        assert_eq!(a.row_to_col, vec![Some(0)]);
        assert_close(a.total_weight, 0.7);
    }

    #[test]
    fn square_matrix_picks_the_optimal_permutation() {
        // Row 0 prefers col 0 (0.9), row 1 prefers col 0 too (0.8) but the best total is
        // 0.9 + 0.7 by giving row 1 col 1.
        let w = vec![vec![0.9, 0.2], vec![0.8, 0.7]];
        let a = max_weight_assignment(&w);
        assert_eq!(a.row_to_col, vec![Some(0), Some(1)]);
        assert_close(a.total_weight, 1.6);
    }

    #[test]
    fn greedy_would_be_suboptimal_here() {
        // Greedy picks (0,0)=5 then (1,1)=1 → 6; optimal is (0,1)=4 + (1,0)=4 → 8.
        let w = vec![vec![5.0, 4.0], vec![4.0, 1.0]];
        let a = max_weight_assignment(&w);
        assert_close(a.total_weight, 8.0);
        assert_eq!(a.row_to_col, vec![Some(1), Some(0)]);
    }

    #[test]
    fn rectangular_more_rows_than_cols() {
        let w = vec![vec![0.3], vec![0.9], vec![0.5]];
        let a = max_weight_assignment(&w);
        assert_eq!(a.matched_count(), 1);
        assert_eq!(a.row_to_col[1], Some(0));
        assert_close(a.total_weight, 0.9);
    }

    #[test]
    fn rectangular_more_cols_than_rows() {
        let w = vec![vec![0.1, 0.8, 0.3]];
        let a = max_weight_assignment(&w);
        assert_eq!(a.row_to_col, vec![Some(1)]);
        assert_close(a.total_weight, 0.8);
    }

    #[test]
    fn zero_weights_stay_unmatched() {
        let w = vec![vec![0.0, 0.0], vec![0.0, 0.6]];
        let a = max_weight_assignment(&w);
        assert_eq!(a.row_to_col[0], None);
        assert_eq!(a.row_to_col[1], Some(1));
        assert_close(a.total_weight, 0.6);
    }

    #[test]
    fn forbidden_edges_are_never_used() {
        let w = vec![vec![FORBIDDEN_WEIGHT, 0.4], vec![0.5, FORBIDDEN_WEIGHT]];
        let a = max_weight_assignment(&w);
        assert_eq!(a.row_to_col, vec![Some(1), Some(0)]);
        assert_close(a.total_weight, 0.9);
    }

    #[test]
    fn assignment_is_one_to_one() {
        let w = vec![
            vec![0.9, 0.8, 0.1],
            vec![0.85, 0.83, 0.2],
            vec![0.7, 0.75, 0.65],
        ];
        let a = max_weight_assignment(&w);
        let cols: Vec<usize> = a.row_to_col.iter().flatten().copied().collect();
        let mut dedup = cols.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(cols.len(), dedup.len(), "columns must be distinct");
        assert_eq!(a.matched_count(), 3);
    }

    #[test]
    fn matches_brute_force_on_small_matrices() {
        // Exhaustively verify optimality for all 3x3 matrices from a small value set.
        let vals = [0.0, 0.3, 0.7];
        let mut count = 0;
        for a in 0..3usize {
            for b in 0..3usize {
                for c in 0..3usize {
                    for d in 0..3usize {
                        let w = vec![
                            vec![vals[a], vals[b], 0.5],
                            vec![vals[c], 0.2, vals[d]],
                            vec![0.4, vals[(a + c) % 3], vals[(b + d) % 3]],
                        ];
                        let got = max_weight_assignment(&w).total_weight;
                        let best = brute_force_best(&w);
                        assert!((got - best).abs() < 1e-9, "matrix {w:?}: {got} vs {best}");
                        count += 1;
                    }
                }
            }
        }
        assert_eq!(count, 81);
    }

    fn brute_force_best(w: &[Vec<f64>]) -> f64 {
        // All permutations of 3 columns, allowing any subset of rows to stay unmatched is not
        // needed because all weights are >= 0 (matching more never hurts); zero-weight matches
        // contribute nothing either way.
        let perms = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        perms
            .iter()
            .map(|p| (0..3).map(|r| w[r][p[r]].max(0.0)).sum::<f64>())
            .fold(0.0, f64::max)
    }
}
