//! Similarity matrices between the attributes of two schemas.

use crate::{Correspondence, MatchingError, MatchingResult, SchemaDef};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use urm_storage::AttrRef;

/// A dense matrix of similarity scores between every source attribute and every target
/// attribute — the raw output of a schema matcher such as COMA++.
///
/// Scores default to `0.0` (no evidence of a correspondence).  Rows are source attributes,
/// columns are target attributes, both in schema declaration order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimilarityMatrix {
    source_attrs: Vec<AttrRef>,
    target_attrs: Vec<AttrRef>,
    /// Row-major scores: `scores[s * target_attrs.len() + t]`.
    scores: Vec<f64>,
    #[serde(skip)]
    source_index: HashMap<AttrRef, usize>,
    #[serde(skip)]
    target_index: HashMap<AttrRef, usize>,
}

impl SimilarityMatrix {
    /// Creates an all-zero similarity matrix between two schemas.
    #[must_use]
    pub fn new(source: &SchemaDef, target: &SchemaDef) -> Self {
        let source_attrs = source.all_attributes();
        let target_attrs = target.all_attributes();
        let scores = vec![0.0; source_attrs.len() * target_attrs.len()];
        let source_index = source_attrs
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, a)| (a, i))
            .collect();
        let target_index = target_attrs
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, a)| (a, i))
            .collect();
        SimilarityMatrix {
            source_attrs,
            target_attrs,
            scores,
            source_index,
            target_index,
        }
    }

    /// The source attributes (rows).
    #[must_use]
    pub fn source_attrs(&self) -> &[AttrRef] {
        &self.source_attrs
    }

    /// The target attributes (columns).
    #[must_use]
    pub fn target_attrs(&self) -> &[AttrRef] {
        &self.target_attrs
    }

    fn source_pos(&self, attr: &AttrRef) -> MatchingResult<usize> {
        self.source_index
            .get(attr)
            .copied()
            .ok_or_else(|| MatchingError::UnknownAttribute {
                side: "source",
                attribute: attr.qualified(),
            })
    }

    fn target_pos(&self, attr: &AttrRef) -> MatchingResult<usize> {
        self.target_index
            .get(attr)
            .copied()
            .ok_or_else(|| MatchingError::UnknownAttribute {
                side: "target",
                attribute: attr.qualified(),
            })
    }

    /// Sets the similarity score of a `(source, target)` attribute pair given as
    /// `(relation, attr)` tuples.  Panics on unknown attributes — use [`Self::try_set`] for the
    /// fallible form.
    pub fn set(
        &mut self,
        source: (impl Into<String>, impl Into<String>),
        target: (impl Into<String>, impl Into<String>),
        score: f64,
    ) {
        self.try_set(
            &AttrRef::new(source.0, source.1),
            &AttrRef::new(target.0, target.1),
            score,
        )
        .expect("unknown attribute in SimilarityMatrix::set");
    }

    /// Sets the similarity score of a `(source, target)` attribute pair.
    pub fn try_set(
        &mut self,
        source: &AttrRef,
        target: &AttrRef,
        score: f64,
    ) -> MatchingResult<()> {
        let s = self.source_pos(source)?;
        let t = self.target_pos(target)?;
        let cols = self.target_attrs.len();
        self.scores[s * cols + t] = score;
        Ok(())
    }

    /// The similarity score of a `(source, target)` attribute pair (0.0 when never set).
    pub fn get(&self, source: &AttrRef, target: &AttrRef) -> MatchingResult<f64> {
        let s = self.source_pos(source)?;
        let t = self.target_pos(target)?;
        Ok(self.scores[s * self.target_attrs.len() + t])
    }

    /// Score by row/column index (used by the assignment algorithms).
    #[must_use]
    pub fn score_at(&self, source_idx: usize, target_idx: usize) -> f64 {
        self.scores[source_idx * self.target_attrs.len() + target_idx]
    }

    /// Number of strictly positive entries.
    #[must_use]
    pub fn positive_entries(&self) -> usize {
        self.scores.iter().filter(|&&s| s > 0.0).count()
    }

    /// All strictly positive correspondences, sorted by descending score.
    #[must_use]
    pub fn correspondences(&self) -> Vec<Correspondence> {
        let cols = self.target_attrs.len();
        let mut out: Vec<Correspondence> = self
            .scores
            .iter()
            .enumerate()
            .filter(|(_, &s)| s > 0.0)
            .map(|(idx, &s)| {
                Correspondence::new(
                    self.source_attrs[idx / cols].clone(),
                    self.target_attrs[idx % cols].clone(),
                    s,
                )
            })
            .collect();
        out.sort_by(|a, b| b.score.total_cmp(&a.score));
        out
    }

    /// The best-scoring source attribute for each target attribute (the "bold edges" of the
    /// paper's Figure 1) — the naive alternative to possible mappings.
    #[must_use]
    pub fn best_per_target(&self) -> Vec<Correspondence> {
        let cols = self.target_attrs.len();
        let mut out = Vec::new();
        for t in 0..cols {
            let mut best: Option<(usize, f64)> = None;
            for s in 0..self.source_attrs.len() {
                let score = self.score_at(s, t);
                if score > 0.0 && best.map(|(_, b)| score > b).unwrap_or(true) {
                    best = Some((s, score));
                }
            }
            if let Some((s, score)) = best {
                out.push(Correspondence::new(
                    self.source_attrs[s].clone(),
                    self.target_attrs[t].clone(),
                    score,
                ));
            }
        }
        out
    }

    /// Dimensions as `(source_count, target_count)`.
    #[must_use]
    pub fn dims(&self) -> (usize, usize) {
        (self.source_attrs.len(), self.target_attrs.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schemas() -> (SchemaDef, SchemaDef) {
        let source =
            SchemaDef::new("S").with_relation("Customer", ["cname", "ophone", "hphone", "mobile"]);
        let target = SchemaDef::new("T").with_relation("Person", ["pname", "phone"]);
        (source, target)
    }

    #[test]
    fn set_and_get_round_trip() {
        let (s, t) = schemas();
        let mut sim = SimilarityMatrix::new(&s, &t);
        sim.set(("Customer", "ophone"), ("Person", "phone"), 0.85);
        assert_eq!(
            sim.get(
                &AttrRef::new("Customer", "ophone"),
                &AttrRef::new("Person", "phone")
            )
            .unwrap(),
            0.85
        );
        assert_eq!(
            sim.get(
                &AttrRef::new("Customer", "hphone"),
                &AttrRef::new("Person", "phone")
            )
            .unwrap(),
            0.0
        );
    }

    #[test]
    fn unknown_attributes_are_rejected() {
        let (s, t) = schemas();
        let mut sim = SimilarityMatrix::new(&s, &t);
        let err = sim
            .try_set(
                &AttrRef::new("Customer", "ghost"),
                &AttrRef::new("Person", "phone"),
                0.5,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            MatchingError::UnknownAttribute { side: "source", .. }
        ));
        let err = sim
            .try_set(
                &AttrRef::new("Customer", "cname"),
                &AttrRef::new("Person", "ghost"),
                0.5,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            MatchingError::UnknownAttribute { side: "target", .. }
        ));
    }

    #[test]
    fn correspondences_sorted_by_score() {
        let (s, t) = schemas();
        let mut sim = SimilarityMatrix::new(&s, &t);
        sim.set(("Customer", "ophone"), ("Person", "phone"), 0.85);
        sim.set(("Customer", "hphone"), ("Person", "phone"), 0.83);
        sim.set(("Customer", "cname"), ("Person", "pname"), 0.9);
        let cs = sim.correspondences();
        assert_eq!(cs.len(), 3);
        assert_eq!(cs[0].score, 0.9);
        assert_eq!(cs[1].score, 0.85);
        assert_eq!(sim.positive_entries(), 3);
    }

    #[test]
    fn best_per_target_picks_the_maximum() {
        let (s, t) = schemas();
        let mut sim = SimilarityMatrix::new(&s, &t);
        sim.set(("Customer", "ophone"), ("Person", "phone"), 0.85);
        sim.set(("Customer", "hphone"), ("Person", "phone"), 0.83);
        sim.set(("Customer", "mobile"), ("Person", "phone"), 0.65);
        sim.set(("Customer", "cname"), ("Person", "pname"), 0.9);
        let best = sim.best_per_target();
        assert_eq!(best.len(), 2);
        let phone = best
            .iter()
            .find(|c| c.target == AttrRef::new("Person", "phone"))
            .unwrap();
        assert_eq!(phone.source, AttrRef::new("Customer", "ophone"));
    }

    #[test]
    fn dims_reflect_schema_sizes() {
        let (s, t) = schemas();
        let sim = SimilarityMatrix::new(&s, &t);
        assert_eq!(sim.dims(), (4, 2));
    }
}
