//! The o-ratio overlap statistic (Section VIII-B.1).

use crate::Mapping;

/// Average pairwise o-ratio of a slice of mappings.
///
/// The o-ratio of two mappings is `|m_i ∩ m_j| / |m_i ∪ m_j|` over their correspondence pairs;
/// the o-ratio of a set is the mean over all unordered pairs.  A single mapping (or an empty
/// set) has o-ratio 1 by convention (there is nothing to disagree about).
#[must_use]
pub fn average_o_ratio(mappings: &[Mapping]) -> f64 {
    if mappings.len() < 2 {
        return 1.0;
    }
    let mut total = 0.0;
    let mut pairs = 0usize;
    for i in 0..mappings.len() {
        for j in (i + 1)..mappings.len() {
            total += mappings[i].o_ratio(&mappings[j]);
            pairs += 1;
        }
    }
    total / pairs as f64
}

/// Full pairwise o-ratio matrix (symmetric, unit diagonal); useful for diagnostics and plots.
#[must_use]
pub fn o_ratio_matrix(mappings: &[Mapping]) -> Vec<Vec<f64>> {
    let n = mappings.len();
    let mut m = vec![vec![1.0; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let r = mappings[i].o_ratio(&mappings[j]);
            m[i][j] = r;
            m[j][i] = r;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Correspondence;
    use urm_storage::AttrRef;

    fn mapping(id: usize, pairs: &[(&str, &str)]) -> Mapping {
        let cs = pairs
            .iter()
            .map(|(s, t)| {
                Correspondence::new(
                    AttrRef::new("S", s.to_string()),
                    AttrRef::new("T", t.to_string()),
                    0.5,
                )
            })
            .collect();
        Mapping::new(id, cs, 0.5)
    }

    #[test]
    fn single_mapping_has_ratio_one() {
        assert_eq!(average_o_ratio(&[mapping(1, &[("a", "x")])]), 1.0);
        assert_eq!(average_o_ratio(&[]), 1.0);
    }

    #[test]
    fn average_of_identical_mappings_is_one() {
        let m = mapping(1, &[("a", "x"), ("b", "y")]);
        let mut m2 = m.clone();
        m2.set_probability(0.5);
        assert_eq!(average_o_ratio(&[m, m2]), 1.0);
    }

    #[test]
    fn average_matches_hand_computation() {
        // m1 = {a→x, b→y}, m2 = {a→x, c→y}, m3 = {d→x, b→y}
        // o(m1,m2) = 1/3, o(m1,m3) = 1/3, o(m2,m3) = 0/4 = 0 → mean = 2/9
        let m1 = mapping(1, &[("a", "x"), ("b", "y")]);
        let m2 = mapping(2, &[("a", "x"), ("c", "y")]);
        let m3 = mapping(3, &[("d", "x"), ("b", "y")]);
        let avg = average_o_ratio(&[m1, m2, m3]);
        assert!((avg - 2.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let ms = vec![
            mapping(1, &[("a", "x"), ("b", "y")]),
            mapping(2, &[("a", "x"), ("c", "y")]),
            mapping(3, &[("d", "x")]),
        ];
        let m = o_ratio_matrix(&ms);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 1.0);
            for (j, cell) in row.iter().enumerate() {
                assert_eq!(*cell, m[j][i]);
                assert!((0.0..=1.0).contains(cell));
            }
        }
    }
}
