//! Error types for the schema-matching substrate.

use std::fmt;

/// Result alias used throughout the matching crate.
pub type MatchingResult<T> = Result<T, MatchingError>;

/// Errors raised by the matching substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum MatchingError {
    /// A similarity score was set for an attribute that is not part of the schema.
    UnknownAttribute {
        /// Which side of the matching was addressed.
        side: &'static str,
        /// The unknown attribute in `relation.attr` form.
        attribute: String,
    },
    /// The requested number of mappings is zero or exceeds what the similarity matrix supports.
    InvalidMappingCount {
        /// Requested number of mappings.
        requested: usize,
        /// Explanation.
        reason: String,
    },
    /// Probabilities of a mapping set do not form a distribution.
    InvalidDistribution {
        /// The sum that was observed.
        sum: f64,
    },
    /// A mapping violates the one-to-one constraint.
    NotOneToOne {
        /// The source attribute that is matched more than once.
        attribute: String,
    },
    /// The similarity matrix has no positive entries, so no mapping can be generated.
    EmptySimilarity,
}

impl fmt::Display for MatchingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatchingError::UnknownAttribute { side, attribute } => {
                write!(f, "unknown {side} attribute '{attribute}'")
            }
            MatchingError::InvalidMappingCount { requested, reason } => {
                write!(f, "cannot generate {requested} mappings: {reason}")
            }
            MatchingError::InvalidDistribution { sum } => {
                write!(f, "mapping probabilities sum to {sum}, expected 1.0")
            }
            MatchingError::NotOneToOne { attribute } => {
                write!(f, "source attribute '{attribute}' matched more than once")
            }
            MatchingError::EmptySimilarity => {
                write!(f, "similarity matrix has no positive entries")
            }
        }
    }
}

impl std::error::Error for MatchingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(MatchingError::EmptySimilarity
            .to_string()
            .contains("similarity"));
        assert!(MatchingError::InvalidDistribution { sum: 0.5 }
            .to_string()
            .contains("0.5"));
        assert!(MatchingError::NotOneToOne {
            attribute: "Customer.cname".into()
        }
        .to_string()
        .contains("Customer.cname"));
        assert!(MatchingError::UnknownAttribute {
            side: "target",
            attribute: "Person.phone".into()
        }
        .to_string()
        .contains("target"));
        assert!(MatchingError::InvalidMappingCount {
            requested: 0,
            reason: "h must be positive".into()
        }
        .to_string()
        .contains("h must be positive"));
    }
}
