//! Sets of possible mappings with normalised probabilities.

use crate::murty::k_best_assignments;
use crate::{Correspondence, Mapping, MatchingError, MatchingResult, SimilarityMatrix};
use serde::{Deserialize, Serialize};
use std::fmt;
use urm_storage::AttrRef;

/// The uncertain matching `M = {m_1, …, m_h}`: mutually exclusive possible mappings whose
/// probabilities sum to one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MappingSet {
    mappings: Vec<Mapping>,
}

impl MappingSet {
    /// Wraps a list of mappings, normalising their probabilities so they sum to one.
    ///
    /// Mirrors the paper's probability model: `Pr(m_i)` is `m_i`'s similarity score divided by
    /// the total score of the `h` retained mappings.  If every probability is zero the mappings
    /// are weighted by score instead; if scores are also all zero a uniform distribution is
    /// used.
    #[must_use]
    pub fn new(mut mappings: Vec<Mapping>) -> Self {
        let prob_sum: f64 = mappings.iter().map(Mapping::probability).sum();
        if prob_sum > 0.0 {
            for m in &mut mappings {
                let p = m.probability() / prob_sum;
                m.set_probability(p);
            }
        } else {
            let score_sum: f64 = mappings.iter().map(Mapping::score).sum();
            let n = mappings.len().max(1) as f64;
            for m in &mut mappings {
                let p = if score_sum > 0.0 {
                    m.score() / score_sum
                } else {
                    1.0 / n
                };
                m.set_probability(p);
            }
        }
        MappingSet { mappings }
    }

    /// Builds a mapping set directly from explicit `(mapping, probability)` data without
    /// renormalising — used by tests that replay the paper's worked examples verbatim.
    /// Returns an error if the probabilities do not sum to 1 (within 1e-6).
    pub fn from_explicit(mappings: Vec<Mapping>) -> MatchingResult<Self> {
        let sum: f64 = mappings.iter().map(Mapping::probability).sum();
        if (sum - 1.0).abs() > 1e-6 {
            return Err(MatchingError::InvalidDistribution { sum });
        }
        Ok(MappingSet { mappings })
    }

    /// Generates the `h` highest-scoring possible mappings from a similarity matrix, with
    /// probabilities normalised over the retained mappings (Section II / [9]).
    pub fn top_h(sim: &SimilarityMatrix, h: usize) -> MatchingResult<Self> {
        if h == 0 {
            return Err(MatchingError::InvalidMappingCount {
                requested: 0,
                reason: "h must be positive".into(),
            });
        }
        if sim.positive_entries() == 0 {
            return Err(MatchingError::EmptySimilarity);
        }
        let (rows, cols) = sim.dims();
        let weights: Vec<Vec<f64>> = (0..rows)
            .map(|r| (0..cols).map(|c| sim.score_at(r, c)).collect())
            .collect();
        let ranked = k_best_assignments(&weights, h);
        if ranked.is_empty() {
            return Err(MatchingError::EmptySimilarity);
        }
        let mappings: Vec<Mapping> = ranked
            .into_iter()
            .enumerate()
            .map(|(i, ranked)| {
                let correspondences: Vec<Correspondence> = ranked
                    .pairs
                    .iter()
                    .map(|&(r, c)| {
                        Correspondence::new(
                            sim.source_attrs()[r].clone(),
                            sim.target_attrs()[c].clone(),
                            sim.score_at(r, c),
                        )
                    })
                    .collect();
                // Probability proportional to score; `MappingSet::new` normalises.
                Mapping::new(i + 1, correspondences, ranked.total_weight)
            })
            .collect();
        Ok(MappingSet::new(mappings))
    }

    /// Number of mappings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.mappings.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.mappings.is_empty()
    }

    /// The mappings in rank order.
    #[must_use]
    pub fn mappings(&self) -> &[Mapping] {
        &self.mappings
    }

    /// Iterates over the mappings.
    pub fn iter(&self) -> impl Iterator<Item = &Mapping> {
        self.mappings.iter()
    }

    /// The mapping with a given id.
    #[must_use]
    pub fn by_id(&self, id: usize) -> Option<&Mapping> {
        self.mappings.iter().find(|m| m.id() == id)
    }

    /// Sum of probabilities (should always be 1 up to rounding).
    #[must_use]
    pub fn probability_sum(&self) -> f64 {
        self.mappings.iter().map(Mapping::probability).sum()
    }

    /// Validates the invariants of the data model: probabilities form a distribution and every
    /// mapping is one-to-one.
    pub fn validate(&self) -> MatchingResult<()> {
        let sum = self.probability_sum();
        if self.is_empty() || (sum - 1.0).abs() > 1e-6 {
            return Err(MatchingError::InvalidDistribution { sum });
        }
        for m in &self.mappings {
            if !m.is_one_to_one() {
                return Err(MatchingError::NotOneToOne {
                    attribute: m
                        .correspondences()
                        .first()
                        .map(|c| c.source.qualified())
                        .unwrap_or_default(),
                });
            }
        }
        Ok(())
    }

    /// The o-ratio of the whole set: the average pairwise o-ratio (Section VIII-B.1).
    #[must_use]
    pub fn o_ratio(&self) -> f64 {
        crate::oratio::average_o_ratio(&self.mappings)
    }

    /// Keeps only the first `n` mappings (by rank) and renormalises; used by the experiment
    /// sweeps over the number of mappings.
    #[must_use]
    pub fn truncated(&self, n: usize) -> MappingSet {
        MappingSet::new(self.mappings.iter().take(n).cloned().collect())
    }

    /// All target attributes covered by at least one mapping.
    #[must_use]
    pub fn covered_target_attributes(&self) -> Vec<AttrRef> {
        let mut set = std::collections::BTreeSet::new();
        for m in &self.mappings {
            for t in m.target_attributes() {
                set.insert(t.clone());
            }
        }
        set.into_iter().collect()
    }
}

impl fmt::Display for MappingSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} possible mappings (o-ratio {:.2})",
            self.len(),
            self.o_ratio()
        )?;
        for m in &self.mappings {
            writeln!(f, "  {m}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SchemaDef;

    fn paper_similarity() -> SimilarityMatrix {
        // The Customer ↔ Person part of Figure 1.
        let source = SchemaDef::new("S").with_relation(
            "Customer",
            ["cname", "ophone", "hphone", "mobile", "oaddr", "haddr"],
        );
        let target = SchemaDef::new("T").with_relation("Person", ["pname", "phone", "addr"]);
        let mut sim = SimilarityMatrix::new(&source, &target);
        sim.set(("Customer", "cname"), ("Person", "pname"), 0.85);
        sim.set(("Customer", "ophone"), ("Person", "phone"), 0.85);
        sim.set(("Customer", "hphone"), ("Person", "phone"), 0.83);
        sim.set(("Customer", "mobile"), ("Person", "phone"), 0.65);
        sim.set(("Customer", "oaddr"), ("Person", "addr"), 0.81);
        sim.set(("Customer", "haddr"), ("Person", "addr"), 0.75);
        sim
    }

    #[test]
    fn top_h_produces_h_distinct_normalised_mappings() {
        let sim = paper_similarity();
        let set = MappingSet::top_h(&sim, 5).unwrap();
        assert_eq!(set.len(), 5);
        set.validate().unwrap();
        assert!((set.probability_sum() - 1.0).abs() < 1e-9);
        // Mappings are ranked by score: the first one uses the best correspondences.
        let best = &set.mappings()[0];
        assert!(best.contains_pair(
            &AttrRef::new("Customer", "cname"),
            &AttrRef::new("Person", "pname")
        ));
        assert!(best.contains_pair(
            &AttrRef::new("Customer", "ophone"),
            &AttrRef::new("Person", "phone")
        ));
        // Scores are non-increasing with rank.
        for w in set.mappings().windows(2) {
            assert!(w[0].score() >= w[1].score() - 1e-9);
        }
    }

    #[test]
    fn top_h_mappings_overlap_heavily() {
        // The phenomenon the paper exploits: possible mappings share most correspondences.
        let sim = paper_similarity();
        let set = MappingSet::top_h(&sim, 5).unwrap();
        assert!(set.o_ratio() > 0.3, "o-ratio was {}", set.o_ratio());
    }

    #[test]
    fn probabilities_follow_scores() {
        let sim = paper_similarity();
        let set = MappingSet::top_h(&sim, 3).unwrap();
        let m = set.mappings();
        assert!(m[0].probability() >= m[1].probability());
        assert!(m[1].probability() >= m[2].probability());
    }

    #[test]
    fn zero_h_and_empty_similarity_are_errors() {
        let sim = paper_similarity();
        assert!(matches!(
            MappingSet::top_h(&sim, 0),
            Err(MatchingError::InvalidMappingCount { .. })
        ));
        let source = SchemaDef::new("S").with_relation("R", ["a"]);
        let target = SchemaDef::new("T").with_relation("Q", ["b"]);
        let empty = SimilarityMatrix::new(&source, &target);
        assert!(matches!(
            MappingSet::top_h(&empty, 3),
            Err(MatchingError::EmptySimilarity)
        ));
    }

    #[test]
    fn from_explicit_validates_distribution() {
        use crate::mapping::Mapping;
        let m1 = Mapping::new(
            1,
            vec![Correspondence::from_parts(("C", "a"), ("T", "x"), 0.9)],
            0.6,
        );
        let m2 = Mapping::new(
            2,
            vec![Correspondence::from_parts(("C", "b"), ("T", "x"), 0.8)],
            0.4,
        );
        let ok = MappingSet::from_explicit(vec![m1.clone(), m2.clone()]).unwrap();
        ok.validate().unwrap();
        let bad = MappingSet::from_explicit(vec![m1, {
            let mut m = m2;
            m.set_probability(0.1);
            m
        }]);
        assert!(matches!(
            bad,
            Err(MatchingError::InvalidDistribution { .. })
        ));
    }

    #[test]
    fn truncated_renormalises() {
        let sim = paper_similarity();
        let set = MappingSet::top_h(&sim, 5).unwrap();
        let short = set.truncated(2);
        assert_eq!(short.len(), 2);
        assert!((short.probability_sum() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn covered_target_attributes_union() {
        let sim = paper_similarity();
        let set = MappingSet::top_h(&sim, 5).unwrap();
        let covered = set.covered_target_attributes();
        assert!(covered.contains(&AttrRef::new("Person", "phone")));
        assert!(covered.contains(&AttrRef::new("Person", "addr")));
    }

    #[test]
    fn display_mentions_count() {
        let sim = paper_similarity();
        let set = MappingSet::top_h(&sim, 2).unwrap();
        assert!(set.to_string().contains("2 possible mappings"));
    }
}
