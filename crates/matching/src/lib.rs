//! # urm-matching
//!
//! The schema-matching substrate of the URM reproduction of *Evaluating Probabilistic Queries
//! over Uncertain Matching* (ICDE 2012).
//!
//! The paper assumes the output of a schema matcher (COMA++): a set of attribute
//! **correspondences** with similarity scores between a source schema `S` and a target schema
//! `T`, turned into `h` **possible mappings** by a bipartite matching algorithm ([9], [10]),
//! each mapping carrying a probability obtained by normalising its total similarity score.
//!
//! This crate rebuilds that pipeline from scratch:
//!
//! * [`SchemaDef`] — a lightweight description of a schema's relations and attributes;
//! * [`Correspondence`] / [`SimilarityMatrix`] — scored attribute pairs;
//! * [`hungarian`] — maximum-weight bipartite assignment (the single best mapping);
//! * [`murty`] — enumeration of the `h` highest-scoring one-to-one partial mappings
//!   (Murty's k-best assignment algorithm driven by the Hungarian solver);
//! * [`Mapping`] / [`MappingSet`] — possible mappings with normalised probabilities, plus the
//!   **o-ratio** overlap statistic of Section VIII-B.1.
//!
//! ```
//! use urm_matching::{MappingSet, SchemaDef, SimilarityMatrix};
//!
//! let source = SchemaDef::new("S").with_relation("Customer", ["cname", "ophone", "hphone"]);
//! let target = SchemaDef::new("T").with_relation("Person", ["pname", "phone"]);
//! let mut sim = SimilarityMatrix::new(&source, &target);
//! sim.set(("Customer", "cname"), ("Person", "pname"), 0.85);
//! sim.set(("Customer", "ophone"), ("Person", "phone"), 0.85);
//! sim.set(("Customer", "hphone"), ("Person", "phone"), 0.83);
//!
//! let mappings = MappingSet::top_h(&sim, 2).unwrap();
//! assert_eq!(mappings.len(), 2);
//! let total: f64 = mappings.iter().map(|m| m.probability()).sum();
//! assert!((total - 1.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod correspondence;
pub mod error;
pub mod hungarian;
pub mod mapping;
pub mod mapping_set;
pub mod murty;
pub mod oratio;
pub mod schema_def;
pub mod similarity;

pub use correspondence::Correspondence;
pub use error::{MatchingError, MatchingResult};
pub use mapping::Mapping;
pub use mapping_set::MappingSet;
pub use schema_def::SchemaDef;
pub use similarity::SimilarityMatrix;
