//! Regression tests proving that the shared-plan cache hands out *views*, never copies.
//!
//! The paper's whole contribution is sharing work across the reformulated queries of an
//! uncertain mapping; these tests pin down that the execution layer does not silently undo
//! that sharing by re-materialising cached results.  Every assertion is on pointer identity
//! (`Arc::ptr_eq` / row-buffer identity), not on value equality.

use std::sync::Arc;
use urm_engine::{Executor, Plan, Predicate};
use urm_mqo::SharedPlanCache;
use urm_storage::{Attribute, Catalog, DataType, Relation, Schema, Tuple, Value};

fn catalog() -> Catalog {
    let customer = Relation::new(
        Schema::new(
            "Customer",
            vec![
                Attribute::new("cid", DataType::Int),
                Attribute::new("city", DataType::Text),
            ],
        ),
        (0..40)
            .map(|i| {
                Tuple::new(vec![
                    Value::from(i as i64),
                    Value::from(if i % 2 == 0 { "hk" } else { "sz" }),
                ])
            })
            .collect(),
    )
    .unwrap();
    let orders = Relation::new(
        Schema::new(
            "Orders",
            vec![
                Attribute::new("oid", DataType::Int),
                Attribute::new("ocid", DataType::Int),
            ],
        ),
        (0..60)
            .map(|i| {
                Tuple::new(vec![
                    Value::from(1000 + i as i64),
                    Value::from((i % 40) as i64),
                ])
            })
            .collect(),
    )
    .unwrap();
    let mut cat = Catalog::new();
    cat.insert(customer);
    cat.insert(orders);
    cat
}

#[test]
fn cache_hits_are_pointer_identical_and_copy_nothing() {
    let cat = catalog();
    let mut cache = SharedPlanCache::new();
    let mut exec = Executor::new(&cat);

    let plan = Plan::scan("Customer")
        .select(Predicate::eq("Customer.city", Value::from("hk")))
        .hash_join(
            Plan::scan("Orders"),
            vec![("Customer.cid".into(), "Orders.ocid".into())],
        )
        .project(vec!["Orders.oid".into()]);

    let first = cache.execute_shared(&plan, &mut exec).unwrap();
    let scans_after_first = exec.stats().scans;
    let ops_after_first = exec.stats().operators_executed;

    let second = cache.execute_shared(&plan, &mut exec).unwrap();
    // The hit is the stored allocation itself — not an equal copy.
    assert!(Arc::ptr_eq(&first, &second));
    assert!(first.shares_rows_with(&second));
    // And it cost zero additional executor work.
    assert_eq!(exec.stats().scans, scans_after_first);
    assert_eq!(exec.stats().operators_executed, ops_after_first);
}

#[test]
fn cached_scans_are_views_of_the_base_relation() {
    let cat = catalog();
    let mut cache = SharedPlanCache::new();
    let mut exec = Executor::new(&cat);

    let scan_result = cache
        .execute_shared(&Plan::scan("Customer"), &mut exec)
        .unwrap();
    assert!(
        scan_result.shares_rows_with(&cat.get("Customer").unwrap()),
        "a cached scan must share the base relation's row buffer"
    );

    // A second query whose prefix is the scan reuses the very same view.
    let sel = Plan::scan("Customer").select(Predicate::eq("Customer.city", Value::from("hk")));
    cache.execute_shared(&sel, &mut exec).unwrap();
    assert_eq!(exec.stats().scans, 1, "the scan must not re-execute");
    assert!(cache.hits() >= 1);
}

#[test]
fn shared_values_leaves_flow_through_without_materialising() {
    // o-sharing feeds intermediate results forward as shared `Values` leaves; a plan over such
    // a leaf must consume the buffer by reference.
    let cat = catalog();
    let mut cache = SharedPlanCache::new();
    let mut exec = Executor::new(&cat);

    let intermediate = exec
        .run_operator_shared(
            &Plan::scan("Customer").select(Predicate::eq("Customer.city", Value::from("hk"))),
        )
        .unwrap();

    // Executing the bare leaf through the cache returns the shared relation itself.
    let leaf = Plan::values_shared(Arc::clone(&intermediate));
    let out = cache.execute_shared(&leaf, &mut exec).unwrap();
    assert!(Arc::ptr_eq(&out, &intermediate));

    // An operator over the leaf sees the same buffer as its input (rows_shared accounts it).
    let shared_before = exec.stats().rows_shared;
    let filtered = cache
        .execute_shared(
            &Plan::values_shared(Arc::clone(&intermediate))
                .select(Predicate::eq("Customer.city", Value::from("hk"))),
            &mut exec,
        )
        .unwrap();
    assert_eq!(filtered.len(), intermediate.len());
    assert!(
        exec.stats().rows_shared >= shared_before,
        "Values leaves are accounted as shared views"
    );
}

#[test]
fn full_osharing_style_run_performs_zero_relation_deep_copies() {
    // Drive a whole batch of overlapping queries (the o-sharing execution shape: shared scan
    // prefixes, selections, a join, projections) through one cache and prove the clone
    // elimination end-to-end: every scanned row is accounted as shared, and repeated queries
    // return pointer-identical answers.
    let cat = catalog();
    let mut cache = SharedPlanCache::new();
    let mut exec = Executor::new(&cat);

    let base = Plan::scan("Customer").select(Predicate::eq("Customer.city", Value::from("hk")));
    let queries = vec![
        base.clone().project(vec!["Customer.cid".into()]),
        base.clone().project(vec!["Customer.city".into()]),
        base.clone().hash_join(
            Plan::scan("Orders"),
            vec![("Customer.cid".into(), "Orders.ocid".into())],
        ),
        base.clone().project(vec!["Customer.cid".into()]), // exact repeat of the first
    ];

    let mut results = Vec::new();
    for q in &queries {
        results.push(cache.execute_shared(q, &mut exec).unwrap());
    }

    // The repeat is the same allocation as the first answer.
    assert!(Arc::ptr_eq(&results[0], &results[3]));
    // Both base relations were scanned exactly once across the whole run…
    assert_eq!(exec.stats().scans, 2);
    // …and every scanned row was handed out as a shared view, never copied.
    let base_rows = (cat.get("Customer").unwrap().len() + cat.get("Orders").unwrap().len()) as u64;
    assert_eq!(exec.stats().rows_shared, base_rows);
}
