//! Global shared plans over a batch of source queries.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};
use urm_engine::optimize::fingerprint;
use urm_engine::{DagRun, DagScheduler, EngineResult, Executor, OperatorDag, Plan};
use urm_storage::{Catalog, Relation};

/// A global plan for a batch of source queries with common sub-expressions identified.
///
/// Construction performs the cost-based sharing search of a classic MQO optimiser: every
/// sub-plan of every query is a sharing candidate, and the optimiser scores every candidate
/// against every *pair* of queries to decide which materialisation points pay off.  This search
/// is what makes e-MQO expensive when hundreds of source queries are generated from a large
/// mapping set (the effect shown in Figures 10(b) and 10(c) of the paper); the execution itself
/// then runs the minimal set of distinct operators.
#[derive(Debug)]
pub struct GlobalPlan {
    queries: Vec<Plan>,
    /// fingerprint → number of queries containing that sub-expression.
    sharing: HashMap<u64, usize>,
    distinct_operators: usize,
    shared_subexpressions: usize,
    build_time: Duration,
}

impl GlobalPlan {
    /// Analyses a batch of source queries and builds the shared global plan.
    pub fn build(queries: &[Plan], catalog: &Catalog) -> EngineResult<Self> {
        let start = Instant::now();

        // Validate the queries up front (schema inference) — a real optimiser would need full
        // schema information to cost alternatives.
        for q in queries {
            q.output_schema(catalog)?;
        }

        // Candidate generation: every sub-plan of every query.
        let mut per_query_subs: Vec<Vec<u64>> = Vec::with_capacity(queries.len());
        let mut sub_of_any: HashMap<u64, usize> = HashMap::new();
        for q in queries {
            let subs: Vec<u64> = q.subplans().iter().map(|p| fingerprint(p)).collect();
            let distinct: HashSet<u64> = subs.iter().copied().collect();
            for f in &distinct {
                *sub_of_any.entry(*f).or_insert(0) += 1;
            }
            per_query_subs.push(subs);
        }

        // Cost-based sharing search (the expensive part, faithful to the baseline's behaviour):
        // for every pair of queries, compute the overlap of their sub-expression multisets to
        // decide the order in which materialisation points are introduced.  The result of this
        // search only needs the aggregate counts — the memoising executor realises the sharing —
        // but the quadratic pass over query pairs is exactly the work a Volcano-style MQO
        // optimiser spends its time on.
        let mut pairwise_benefit = 0usize;
        for i in 0..per_query_subs.len() {
            let set_i: HashSet<u64> = per_query_subs[i].iter().copied().collect();
            for subs_j in per_query_subs.iter().skip(i + 1) {
                for f in subs_j {
                    if set_i.contains(f) {
                        pairwise_benefit += 1;
                    }
                }
            }
        }

        // Distinct operator count: distinct non-leaf sub-expressions across the whole batch.
        let mut distinct_ops: HashSet<u64> = HashSet::new();
        for q in queries {
            for p in q.subplans() {
                if !matches!(p, Plan::Scan { .. } | Plan::Values(_)) {
                    distinct_ops.insert(fingerprint(p));
                }
            }
        }

        let shared_subexpressions = sub_of_any.values().filter(|&&n| n > 1).count();
        Ok(GlobalPlan {
            queries: queries.to_vec(),
            sharing: sub_of_any,
            distinct_operators: distinct_ops.len(),
            shared_subexpressions: shared_subexpressions.max(pairwise_benefit.min(1)),
            build_time: start.elapsed(),
        })
    }

    /// Number of queries covered by the global plan.
    #[must_use]
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// Number of distinct operator nodes that will be executed (the paper's Table IV metric for
    /// the "optimal" plan).
    #[must_use]
    pub fn distinct_operator_count(&self) -> usize {
        self.distinct_operators
    }

    /// Number of sub-expressions shared by at least two queries.
    #[must_use]
    pub fn shared_subexpression_count(&self) -> usize {
        self.shared_subexpressions
    }

    /// How many queries contain the sub-expression with the given fingerprint.
    #[must_use]
    pub fn sharing_degree(&self, fingerprint: u64) -> usize {
        self.sharing.get(&fingerprint).copied().unwrap_or(0)
    }

    /// Time spent constructing the global plan.
    #[must_use]
    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    /// Executes every query through one merged shared-operator DAG, returning the results in
    /// the order the queries were supplied to [`GlobalPlan::build`].
    ///
    /// Every query is bound and merged into a single [`OperatorDag`]; the scheduler then runs
    /// each distinct operator exactly once — the defining property of the e-MQO global plan.
    pub fn execute(&self, exec: &mut Executor<'_>) -> EngineResult<Vec<Arc<Relation>>> {
        Ok(self
            .execute_dag(exec, DagScheduler::sequential())?
            .root_results)
    }

    /// Like [`execute`](GlobalPlan::execute) with an explicit scheduler (e.g. parallel
    /// workers), returning the full [`DagRun`] including the node-dedup report.
    pub fn execute_dag(
        &self,
        exec: &mut Executor<'_>,
        scheduler: DagScheduler,
    ) -> EngineResult<DagRun> {
        let mut dag = OperatorDag::new();
        for q in &self.queries {
            let physical = exec.bind(q)?;
            dag.add_root(&physical);
        }
        scheduler.execute(&dag, exec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urm_engine::Predicate;
    use urm_storage::{Attribute, DataType, Schema, Tuple, Value};

    fn catalog() -> Catalog {
        let schema = Schema::new(
            "R",
            vec![
                Attribute::new("a", DataType::Int),
                Attribute::new("b", DataType::Text),
            ],
        );
        let rows = (0..50)
            .map(|i| {
                Tuple::new(vec![
                    Value::from(i as i64),
                    Value::from(if i % 5 == 0 { "hit" } else { "miss" }),
                ])
            })
            .collect();
        let mut cat = Catalog::new();
        cat.insert(Relation::new(schema, rows).unwrap());
        cat
    }

    fn select_b(value: &str) -> Plan {
        Plan::scan("R").select(Predicate::eq("R.b", Value::from(value)))
    }

    #[test]
    fn build_counts_distinct_operators() {
        let cat = catalog();
        let queries = vec![
            select_b("hit").project(vec!["R.a".into()]),
            select_b("hit").project(vec!["R.b".into()]),
            select_b("miss").project(vec!["R.a".into()]),
        ];
        let global = GlobalPlan::build(&queries, &cat).unwrap();
        assert_eq!(global.query_count(), 3);
        // Distinct operators: select(hit), select(miss), project-a-over-hit, project-b-over-hit,
        // project-a-over-miss = 5.
        assert_eq!(global.distinct_operator_count(), 5);
        assert!(global.shared_subexpression_count() >= 1);
    }

    #[test]
    fn execute_runs_each_distinct_operator_once() {
        let cat = catalog();
        let queries = vec![
            select_b("hit").project(vec!["R.a".into()]),
            select_b("hit").project(vec!["R.b".into()]),
            select_b("hit").project(vec!["R.a".into()]), // duplicate of the first
        ];
        let global = GlobalPlan::build(&queries, &cat).unwrap();
        let mut exec = Executor::new(&cat);
        let results = global.execute(&mut exec).unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].rows(), results[2].rows());
        // One scan, one selection, two projections executed in total.
        assert_eq!(exec.stats().scans, 1);
        assert_eq!(exec.stats().operators_executed, 3);
    }

    #[test]
    fn results_match_independent_execution() {
        let cat = catalog();
        let queries = vec![
            select_b("hit"),
            select_b("miss"),
            select_b("hit").project(vec!["R.a".into()]),
        ];
        let global = GlobalPlan::build(&queries, &cat).unwrap();
        let mut exec = Executor::new(&cat);
        let shared = global.execute(&mut exec).unwrap();
        for (plan, result) in queries.iter().zip(&shared) {
            let direct = Executor::new(&cat).run(plan).unwrap();
            assert_eq!(direct.rows(), result.rows());
        }
    }

    #[test]
    fn sharing_degree_reports_query_counts() {
        let cat = catalog();
        let shared_sub = select_b("hit");
        let queries = vec![
            shared_sub.clone().project(vec!["R.a".into()]),
            shared_sub.clone().project(vec!["R.b".into()]),
        ];
        let global = GlobalPlan::build(&queries, &cat).unwrap();
        assert_eq!(global.sharing_degree(fingerprint(&shared_sub)), 2);
        assert_eq!(global.sharing_degree(0xdead_beef), 0);
    }

    #[test]
    fn parallel_dag_execution_matches_sequential() {
        let cat = catalog();
        let queries = vec![
            select_b("hit").project(vec!["R.a".into()]),
            select_b("hit").project(vec!["R.b".into()]),
            select_b("miss").project(vec!["R.a".into()]),
            select_b("hit"),
        ];
        let global = GlobalPlan::build(&queries, &cat).unwrap();
        let mut seq_exec = Executor::new(&cat);
        let sequential = global.execute(&mut seq_exec).unwrap();
        let mut par_exec = Executor::new(&cat);
        let parallel = global
            .execute_dag(&mut par_exec, DagScheduler::with_workers(3))
            .unwrap();
        for (a, b) in sequential.iter().zip(&parallel.root_results) {
            assert_eq!(a.rows(), b.rows());
        }
        // Same distinct work regardless of mode; dedup happened.
        assert_eq!(par_exec.stats().scans, seq_exec.stats().scans);
        assert_eq!(
            par_exec.stats().operators_executed,
            seq_exec.stats().operators_executed
        );
        assert!(parallel.report.operators_reused > 0);
        assert_eq!(parallel.report.workers, 3);
    }

    #[test]
    fn invalid_query_fails_the_build() {
        let cat = catalog();
        let queries = vec![Plan::scan("Ghost")];
        assert!(GlobalPlan::build(&queries, &cat).is_err());
    }

    #[test]
    fn empty_batch_is_fine() {
        let cat = catalog();
        let global = GlobalPlan::build(&[], &cat).unwrap();
        assert_eq!(global.query_count(), 0);
        assert_eq!(global.distinct_operator_count(), 0);
        let mut exec = Executor::new(&cat);
        assert!(global.execute(&mut exec).unwrap().is_empty());
    }
}
