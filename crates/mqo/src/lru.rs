//! A small bounded map with least-recently-used eviction.
//!
//! Shared by the [`SharedPlanCache`](crate::SharedPlanCache) (materialised sub-plan results)
//! and the service layer's answer cache.  Recency is tracked with a monotonic clock stamp per
//! entry; eviction scans for the minimum stamp, which is `O(n)` but entirely adequate for the
//! few-hundred-entry capacities these caches run with (and keeps the structure dependency-free).

use std::collections::HashMap;
use std::hash::Hash;

#[derive(Debug)]
struct Slot<V> {
    value: V,
    last_used: u64,
}

/// A bounded `HashMap` that evicts the least-recently-used entry on overflow.
///
/// A capacity of `None` means unbounded. [`get`](LruCache::get) counts as a use.
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: Option<usize>,
    slots: HashMap<K, Slot<V>>,
    clock: u64,
    evictions: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// An unbounded cache (never evicts).
    #[must_use]
    pub fn unbounded() -> Self {
        LruCache {
            capacity: None,
            slots: HashMap::new(),
            clock: 0,
            evictions: 0,
        }
    }

    /// A cache holding at most `capacity` entries (at least 1).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        LruCache {
            capacity: Some(capacity.max(1)),
            slots: HashMap::new(),
            clock: 0,
            evictions: 0,
        }
    }

    /// The configured capacity (`None` when unbounded).
    #[must_use]
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Number of resident entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of entries evicted so far.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Whether `key` is resident (does not refresh recency).
    #[must_use]
    pub fn contains(&self, key: &K) -> bool {
        self.slots.contains_key(key)
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.clock += 1;
        let clock = self.clock;
        self.slots.get_mut(key).map(|slot| {
            slot.last_used = clock;
            &slot.value
        })
    }

    /// Inserts `key → value` as the most recent entry, evicting the least-recently-used
    /// entry when that would exceed the capacity.  Returns the evicted key, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<K> {
        self.clock += 1;
        let slot = Slot {
            value,
            last_used: self.clock,
        };
        let fresh = self.slots.insert(key.clone(), slot).is_none();
        let over = matches!(self.capacity, Some(cap) if self.slots.len() > cap);
        if !(fresh && over) {
            return None;
        }
        let victim = self
            .slots
            .iter()
            .filter(|(k, _)| **k != key)
            .min_by_key(|(_, slot)| slot.last_used)
            .map(|(k, _)| k.clone())?;
        self.slots.remove(&victim);
        self.evictions += 1;
        Some(victim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut cache = LruCache::with_capacity(2);
        assert_eq!(cache.capacity(), Some(2));
        cache.insert("a", 1);
        cache.insert("b", 2);
        // Touch "a" so "b" becomes the LRU entry.
        assert_eq!(cache.get(&"a"), Some(&1));
        let evicted = cache.insert("c", 3);
        assert_eq!(evicted, Some("b"));
        assert_eq!(cache.len(), 2);
        assert!(cache.contains(&"a") && cache.contains(&"c"));
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn overwriting_does_not_evict() {
        let mut cache = LruCache::with_capacity(2);
        cache.insert("a", 1);
        cache.insert("b", 2);
        assert_eq!(cache.insert("a", 10), None);
        assert_eq!(cache.get(&"a"), Some(&10));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn unbounded_never_evicts() {
        let mut cache = LruCache::unbounded();
        for i in 0..1000 {
            assert_eq!(cache.insert(i, i), None);
        }
        assert_eq!(cache.len(), 1000);
        assert_eq!(cache.capacity(), None);
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn capacity_is_at_least_one() {
        let mut cache = LruCache::with_capacity(0);
        assert_eq!(cache.capacity(), Some(1));
        cache.insert(1, 1);
        cache.insert(2, 2);
        assert_eq!(cache.len(), 1);
        assert!(cache.contains(&2));
    }
}
