//! A small bounded map with least-recently-used eviction.
//!
//! Shared by the [`SharedPlanCache`](crate::SharedPlanCache) (materialised sub-plan results)
//! and the service layer's answer cache.  Recency is tracked with a monotonic clock stamp per
//! entry plus an ordered stamp → key index, so lookup refresh and eviction are both
//! `O(log n)` and no operation deep-copies a key: the key is allocated once per entry and
//! shared (`Arc`) between the slot table and the recency index.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;
use urm_storage::RecencyIndex;

#[derive(Debug)]
struct Slot<V> {
    value: V,
    last_used: u64,
    /// The entry's eviction weight: 1 for count-capacity caches, a byte estimate for
    /// byte-budgeted ones (see [`LruCache::with_byte_budget`]).
    weight: usize,
}

/// A bounded `HashMap` that evicts the least-recently-used entry on overflow.
///
/// Two bounding modes: a count capacity (at most `capacity` entries) and a *weight* budget
/// ([`with_byte_budget`](LruCache::with_byte_budget)) where each entry carries a caller-supplied
/// weight — the byte accounting the spill-aware caches use.  A capacity of `None` with no
/// budget means unbounded. [`get`](LruCache::get) counts as a use.
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: Option<usize>,
    /// Maximum total entry weight (`None` = no weight bound).
    weight_budget: Option<usize>,
    /// Sum of resident entry weights.
    total_weight: usize,
    slots: HashMap<Arc<K>, Slot<V>>,
    /// The shared LRU machinery ([`RecencyIndex`], also behind the spill pool and the epoch
    /// pin LRU); the key is `Arc`-shared with the slot table, so no operation deep-copies it.
    recency: RecencyIndex<Arc<K>>,
    evictions: u64,
    hits: u64,
    misses: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// An unbounded cache (never evicts).
    #[must_use]
    pub fn unbounded() -> Self {
        LruCache {
            capacity: None,
            weight_budget: None,
            total_weight: 0,
            slots: HashMap::new(),
            recency: RecencyIndex::new(),
            evictions: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// A cache holding at most `capacity` entries (at least 1).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        LruCache {
            capacity: Some(capacity.max(1)),
            weight_budget: None,
            total_weight: 0,
            slots: HashMap::new(),
            recency: RecencyIndex::new(),
            evictions: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// A cache bounded by total entry *weight* instead of entry count: insert with
    /// [`insert_weighted`](LruCache::insert_weighted) (typically a byte estimate) and the
    /// least-recently-used entries are evicted until the total weight fits `budget` again.
    /// The spill-aware shared-plan cache sizes its materialised sub-plans this way.
    #[must_use]
    pub fn with_byte_budget(budget: usize) -> Self {
        LruCache {
            weight_budget: Some(budget),
            ..LruCache::unbounded()
        }
    }

    /// The configured capacity (`None` when unbounded).
    #[must_use]
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// The configured weight budget (`None` when the cache is count-bounded or unbounded).
    #[must_use]
    pub fn weight_budget(&self) -> Option<usize> {
        self.weight_budget
    }

    /// Sum of the weights of every resident entry (entry count for plain `insert`).
    #[must_use]
    pub fn total_weight(&self) -> usize {
        self.total_weight
    }

    /// Number of resident entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of entries evicted so far.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Number of [`get`](LruCache::get) calls answered by a resident entry.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of [`get`](LruCache::get) calls that found nothing.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Fraction of lookups answered by the cache (0 before any lookup).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Whether `key` is resident (does not refresh recency).
    #[must_use]
    pub fn contains(&self, key: &K) -> bool {
        self.slots.contains_key(key)
    }

    /// Looks up `key`, refreshing its recency on a hit.  Hits and misses are counted
    /// ([`hits`](LruCache::hits) / [`misses`](LruCache::misses)); [`contains`](LruCache::contains)
    /// counts nothing.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let slot = match self.slots.get_mut(key) {
            None => {
                self.misses += 1;
                return None;
            }
            Some(slot) => {
                self.hits += 1;
                slot
            }
        };
        // The index recovers the shared key from the old stamp itself (every resident slot
        // is indexed, so this is never the stale-stamp no-op).
        self.recency.refresh(&mut slot.last_used);
        Some(&slot.value)
    }

    /// Inserts `key → value` as the most recent entry (weight 1), evicting the
    /// least-recently-used entry when that would exceed the capacity.  Returns the first
    /// evicted key, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<K> {
        self.insert_weighted(key, value, 1).into_iter().next()
    }

    /// Inserts `key → value` as the most recent entry carrying `weight`, evicting
    /// least-recently-used entries while the count capacity or the weight budget is exceeded.
    /// Returns every evicted key (a heavy insert into a byte-budgeted cache can displace
    /// several light entries; an entry heavier than the whole budget is admitted and then
    /// immediately evicted itself — the cache never rejects, it recomputes).
    pub fn insert_weighted(&mut self, key: K, value: V, weight: usize) -> Vec<K> {
        if let Some(slot) = self.slots.get_mut(&key) {
            // Overwrite in place: refresh recency and weight, then rebalance.
            self.total_weight = self.total_weight - slot.weight + weight;
            slot.value = value;
            slot.weight = weight;
            self.recency.refresh(&mut slot.last_used);
            return self.evict_to_bounds();
        }

        let shared = Arc::new(key);
        let last_used = self.recency.insert_fresh(Arc::clone(&shared));
        self.slots.insert(
            shared,
            Slot {
                value,
                last_used,
                weight,
            },
        );
        self.total_weight += weight;
        self.evict_to_bounds()
    }

    /// Evicts oldest-first until both the count capacity and the weight budget hold.
    fn evict_to_bounds(&mut self) -> Vec<K> {
        let mut evicted = Vec::new();
        loop {
            let over_capacity = matches!(self.capacity, Some(cap) if self.slots.len() > cap);
            let over_weight =
                matches!(self.weight_budget, Some(budget) if self.total_weight > budget);
            if !over_capacity && !over_weight {
                return evicted;
            }
            // Oldest stamp = least-recently-used; every indexed stamp is current here because
            // the cache evicts stamps eagerly.  (With a weight budget the newest entry can
            // itself be the last one standing and still overweight; it is evicted like any
            // other, leaving the cache empty.)
            let Some(victim) = self.recency.pop_oldest(|_, _| true) else {
                return evicted;
            };
            let slot = self.slots.remove(&victim).expect("slot for recency entry");
            self.total_weight -= slot.weight;
            self.evictions += 1;
            // Both owners (slot table + recency index) are gone, so this is a move, not a copy.
            evicted.push(Arc::try_unwrap(victim).unwrap_or_else(|shared| (*shared).clone()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut cache = LruCache::with_capacity(2);
        assert_eq!(cache.capacity(), Some(2));
        cache.insert("a", 1);
        cache.insert("b", 2);
        // Touch "a" so "b" becomes the LRU entry.
        assert_eq!(cache.get(&"a"), Some(&1));
        let evicted = cache.insert("c", 3);
        assert_eq!(evicted, Some("b"));
        assert_eq!(cache.len(), 2);
        assert!(cache.contains(&"a") && cache.contains(&"c"));
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn overwriting_does_not_evict() {
        let mut cache = LruCache::with_capacity(2);
        cache.insert("a", 1);
        cache.insert("b", 2);
        assert_eq!(cache.insert("a", 10), None);
        assert_eq!(cache.get(&"a"), Some(&10));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn overwriting_refreshes_recency() {
        let mut cache = LruCache::with_capacity(2);
        cache.insert("a", 1);
        cache.insert("b", 2);
        // Overwriting "a" makes "b" the LRU entry.
        cache.insert("a", 10);
        assert_eq!(cache.insert("c", 3), Some("b"));
        assert!(cache.contains(&"a") && cache.contains(&"c"));
    }

    #[test]
    fn unbounded_never_evicts() {
        let mut cache = LruCache::unbounded();
        for i in 0..1000 {
            assert_eq!(cache.insert(i, i), None);
        }
        assert_eq!(cache.len(), 1000);
        assert_eq!(cache.capacity(), None);
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn capacity_is_at_least_one() {
        let mut cache = LruCache::with_capacity(0);
        assert_eq!(cache.capacity(), Some(1));
        cache.insert(1, 1);
        cache.insert(2, 2);
        assert_eq!(cache.len(), 1);
        assert!(cache.contains(&2));
    }

    #[test]
    fn hit_rate_accounting_tracks_gets_only() {
        let mut cache = LruCache::with_capacity(2);
        assert_eq!(cache.hit_rate(), 0.0, "no lookups yet");
        cache.insert("a", 1);
        // contains() is a probe, not a use: it must not move the needle.
        assert!(cache.contains(&"a"));
        assert_eq!((cache.hits(), cache.misses()), (0, 0));

        assert_eq!(cache.get(&"a"), Some(&1)); // hit
        assert_eq!(cache.get(&"b"), None); // miss
        assert_eq!(cache.get(&"a"), Some(&1)); // hit
        assert_eq!((cache.hits(), cache.misses()), (2, 1));
        assert!((cache.hit_rate() - 2.0 / 3.0).abs() < 1e-12);

        // An evicted key counts as a miss like any other absent key.
        cache.insert("b", 2);
        assert_eq!(cache.get(&"a"), Some(&1)); // hit; "b" is now least recent
        cache.insert("c", 3); // evicts "b"
        assert_eq!(cache.get(&"b"), None);
        assert_eq!((cache.hits(), cache.misses()), (3, 2));
        assert_eq!(cache.hit_rate(), 0.6);
    }

    #[test]
    fn interleaved_gets_and_inserts_evict_in_recency_order() {
        let mut cache = LruCache::with_capacity(3);
        cache.insert("a", 1);
        cache.insert("b", 2);
        assert_eq!(cache.get(&"a"), Some(&1)); // order now b, a
        cache.insert("c", 3); // order b, a, c
        assert_eq!(cache.get(&"b"), Some(&2)); // order a, c, b
        assert_eq!(cache.insert("d", 4), Some("a"), "a was least recent");
        assert_eq!(cache.get(&"c"), Some(&3)); // order b, d, c
        assert_eq!(cache.insert("e", 5), Some("b"));
        assert_eq!(cache.insert("f", 6), Some("d"));
        assert!(cache.contains(&"c") && cache.contains(&"e") && cache.contains(&"f"));
        assert_eq!(cache.evictions(), 3);
        // A miss on an evicted key does not disturb the recency of residents.
        assert_eq!(cache.get(&"a"), None);
        assert_eq!(cache.insert("g", 7), Some("c"));
    }

    #[test]
    fn capacity_zero_clamps_to_one_and_still_counts() {
        let mut cache = LruCache::with_capacity(0);
        assert_eq!(cache.capacity(), Some(1), "capacity 0 is clamped to 1");
        assert_eq!(cache.get(&"a"), None);
        cache.insert("a", 1);
        assert_eq!(cache.get(&"a"), Some(&1));
        // Every further insert evicts the sole resident.
        assert_eq!(cache.insert("b", 2), Some("a"));
        assert_eq!(cache.insert("c", 3), Some("b"));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 2);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // Overwriting the sole resident is still not an eviction.
        assert_eq!(cache.insert("c", 30), None);
        assert_eq!(cache.get(&"c"), Some(&30));
    }

    #[test]
    fn weight_budget_evicts_by_bytes_not_count() {
        let mut cache = LruCache::with_byte_budget(100);
        assert_eq!(cache.weight_budget(), Some(100));
        assert_eq!(cache.capacity(), None);
        assert!(cache.insert_weighted("a", 1, 40).is_empty());
        assert!(cache.insert_weighted("b", 2, 40).is_empty());
        assert_eq!(cache.total_weight(), 80);
        // 40 more bytes exceed the budget: the LRU entry goes, however many entries reside.
        assert_eq!(cache.insert_weighted("c", 3, 40), vec!["a"]);
        assert_eq!(cache.total_weight(), 80);
        // A heavy insert displaces *several* light entries at once.
        assert_eq!(cache.insert_weighted("d", 4, 90), vec!["b", "c"]);
        assert_eq!(cache.total_weight(), 90);
        assert_eq!(cache.evictions(), 3);
    }

    #[test]
    fn entry_heavier_than_the_budget_is_evicted_immediately() {
        let mut cache = LruCache::with_byte_budget(10);
        let evicted = cache.insert_weighted("huge", 1, 1000);
        assert_eq!(evicted, vec!["huge"]);
        assert!(cache.is_empty());
        assert_eq!(cache.total_weight(), 0);
        // The cache still works for entries that do fit.
        assert!(cache.insert_weighted("small", 2, 5).is_empty());
        assert_eq!(cache.get(&"small"), Some(&2));
    }

    #[test]
    fn weighted_overwrite_rebalances_weight() {
        let mut cache = LruCache::with_byte_budget(100);
        cache.insert_weighted("a", 1, 30);
        cache.insert_weighted("b", 2, 30);
        // Growing `a` past the budget evicts `b` (the LRU entry), not `a` itself.
        assert_eq!(cache.insert_weighted("a", 10, 90), vec!["b"]);
        assert_eq!(cache.get(&"a"), Some(&10));
        assert_eq!(cache.total_weight(), 90);
    }

    #[test]
    fn weighted_gets_refresh_recency_like_plain_ones() {
        let mut cache = LruCache::with_byte_budget(100);
        cache.insert_weighted("a", 1, 40);
        cache.insert_weighted("b", 2, 40);
        assert_eq!(cache.get(&"a"), Some(&1)); // b is now least recent
        assert_eq!(cache.insert_weighted("c", 3, 40), vec!["b"]);
        assert!(cache.contains(&"a") && cache.contains(&"c"));
    }

    #[test]
    fn eviction_order_follows_access_pattern_under_churn() {
        let mut cache = LruCache::with_capacity(3);
        for i in 0..3 {
            cache.insert(i, i);
        }
        // Access order now 0, 1, 2 → touch 0 and 1, leaving 2 as LRU.
        cache.get(&0);
        cache.get(&1);
        assert_eq!(cache.insert(3, 3), Some(2));
        assert_eq!(cache.insert(4, 4), Some(0));
        assert_eq!(cache.len(), 3);
        assert!(cache.contains(&1) && cache.contains(&3) && cache.contains(&4));
        assert_eq!(cache.evictions(), 2);
    }
}
