//! # urm-mqo
//!
//! A multi-query-optimization (MQO) substrate used as the paper's **e-MQO** baseline
//! (Section III-B.3).
//!
//! e-MQO takes the set of *distinct* source queries produced by the possible mappings and,
//! instead of evaluating them independently, builds a single **global plan** in which common
//! sub-expressions are evaluated once and shared.  The paper implements this with the approach
//! of Zhou et al. [12]; the defining characteristics it relies on are:
//!
//! 1. the global plan executes the *minimum* number of distinct operators (Table IV uses this
//!    as the yardstick for how close SNF/SEF get to optimal), and
//! 2. constructing the global plan is expensive — e-MQO spends so long searching for sharing
//!    opportunities that it loses to plain e-basic end-to-end (Figures 10(b) and 10(c)).
//!
//! This crate reproduces both characteristics with a transparent design: every sub-plan of every
//! query is fingerprinted and registered in a [`SharedPlanCache`]; a [`GlobalPlan`] evaluates
//! sub-plans bottom-up, memoising each distinct sub-expression so it is executed exactly once;
//! and [`GlobalPlan::build`] performs the (intentionally thorough, quadratic-in-candidates)
//! covering analysis over all pairs of queries that a cost-based MQO search performs, which is
//! what makes plan construction slow for hundreds of source queries.
//!
//! ```
//! use urm_engine::{Executor, Plan, Predicate};
//! use urm_mqo::GlobalPlan;
//! use urm_storage::{Attribute, Catalog, DataType, Relation, Schema, Tuple, Value};
//!
//! let schema = Schema::new("R", vec![Attribute::new("a", DataType::Int)]);
//! let rel = Relation::new(schema, vec![Tuple::new(vec![Value::from(1i64)])]).unwrap();
//! let mut catalog = Catalog::new();
//! catalog.insert(rel);
//!
//! let q1 = Plan::scan("R").select(Predicate::eq("R.a", Value::from(1i64)));
//! let q2 = Plan::scan("R").select(Predicate::eq("R.a", Value::from(1i64)));
//! let global = GlobalPlan::build(&[q1, q2], &catalog).unwrap();
//! assert_eq!(global.distinct_operator_count(), 1); // the one selection is shared by both queries
//! let mut exec = Executor::new(&catalog);
//! let results = global.execute(&mut exec).unwrap();
//! assert_eq!(results.len(), 2);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod cache;
pub mod global;
pub mod lru;

pub use cache::SharedPlanCache;
pub use global::GlobalPlan;
pub use lru::LruCache;
