//! Memoisation cache for shared sub-expressions.

use crate::lru::LruCache;
use std::sync::Arc;
use urm_engine::{DagResultCache, EngineResult, Executor, OperatorDag, PhysicalPlan, Plan};
use urm_storage::Relation;

/// A cache mapping *bound* sub-plan fingerprints to their materialised results.
///
/// Executing a plan "through" the cache binds it once ([`Executor::bind`]) and evaluates each
/// distinct physical sub-expression once; subsequent queries containing the same sub-expression
/// reuse the materialised relation.  This is the execution-side half of the e-MQO baseline,
/// and — bounded — the batch-wide sub-plan cache of the serving layer.
///
/// Keys are [`PhysicalPlan::fingerprint`]s: identity-based for leaves (relation name, alias and
/// row-buffer pointer for scans; schema and row-buffer pointer for `Values`), structural above
/// them.  Two epochs' same-named relations therefore never collide, fingerprinting never hashes
/// row *contents*, and a cache hit returns the stored `Arc` itself — the hit flows into the
/// parent operator as a shared view, with zero relation copies end-to-end.  The flip side of
/// identity-based keys: a cache must not outlive the catalog (and any `Values` relations) its
/// plans were bound against, which the per-batch/per-epoch caches of the serving layer satisfy
/// by construction.
///
/// By default the cache is unbounded (the e-MQO baseline materialises every distinct
/// sub-expression of one evaluation).  [`with_capacity`](SharedPlanCache::with_capacity) bounds
/// the number of resident materialised relations with least-recently-used eviction, which is
/// what a long-lived service needs: an evicted sub-plan is simply recomputed on its next use.
#[derive(Debug)]
pub struct SharedPlanCache {
    results: LruCache<u64, Arc<Relation>>,
    /// The persistent sharing graph: bound plans are merged once (an `Arc` pointer walk) and
    /// every later execution of an already-merged plan reuses its nodes instead of rebuilding a
    /// DAG from scratch.  Nodes are tiny (shared plan handle + edge lists), so this grows with
    /// the number of *distinct* bound operators the cache has seen, while the LRU keeps the
    /// materialised results bounded.
    dag: OperatorDag,
}

impl Default for SharedPlanCache {
    fn default() -> Self {
        SharedPlanCache::new()
    }
}

impl SharedPlanCache {
    /// Creates an empty, unbounded cache.
    #[must_use]
    pub fn new() -> Self {
        SharedPlanCache {
            results: LruCache::unbounded(),
            dag: OperatorDag::new(),
        }
    }

    /// Creates an empty cache holding at most `capacity` materialised sub-plans (LRU-evicted).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        SharedPlanCache {
            results: LruCache::with_capacity(capacity),
            dag: OperatorDag::new(),
        }
    }

    /// Creates an empty cache bounded by *bytes of materialised rows* instead of entry count:
    /// each published sub-plan result is weighted by its
    /// [`estimated_bytes`](urm_storage::Relation::estimated_bytes), and least-recently-used
    /// results are evicted once the total exceeds `bytes` — the accounting a memory-budgeted
    /// deployment wants, since one join result can outweigh a thousand selections.
    #[must_use]
    pub fn with_byte_budget(bytes: usize) -> Self {
        SharedPlanCache {
            results: LruCache::with_byte_budget(bytes),
            dag: OperatorDag::new(),
        }
    }

    /// Estimated bytes of the materialised results currently resident (entry count when the
    /// cache is count-bounded — plain inserts weigh 1).
    #[must_use]
    pub fn resident_weight(&self) -> usize {
        self.results.total_weight()
    }

    /// The configured capacity (`None` when unbounded).
    #[must_use]
    pub fn capacity(&self) -> Option<usize> {
        self.results.capacity()
    }

    /// Number of cache hits so far (delegated to the LRU store — one counter set, no drift).
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.results.hits()
    }

    /// Number of cache misses (distinct sub-expressions executed).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.results.misses()
    }

    /// Number of materialised sub-plans evicted to stay within the capacity.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.results.evictions()
    }

    /// Fraction of lookups answered from the cache (0 when nothing was looked up yet).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        self.results.hit_rate()
    }

    /// Number of distinct materialised sub-expressions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// Executes `plan` with sub-expression sharing: the plan is bound once, then every bound
    /// sub-plan that is already cached is replaced by its materialised result, and newly
    /// computed results are inserted.
    pub fn execute_shared(
        &mut self,
        plan: &Plan,
        exec: &mut Executor<'_>,
    ) -> EngineResult<Arc<Relation>> {
        let physical = exec.bind(plan)?;
        self.execute_shared_physical(&physical, exec)
    }

    /// Executes an already-bound plan through the cache (see
    /// [`execute_shared`](SharedPlanCache::execute_shared)).
    ///
    /// The cache is a thin front-end of the engine's shared-operator DAG runtime: the bound
    /// plan is merged into the cache's *persistent* [`OperatorDag`] (an `Arc` pointer walk —
    /// the plan's children are Arc-shared, so no subtree is cloned, and a plan seen before adds
    /// zero nodes) and resolved through [`OperatorDag::resolve_root`] with this cache's LRU
    /// store plugged in as the [`DagResultCache`].  A stored node prunes its whole subgraph;
    /// child results — cached or fresh — flow into parent operators as shared views
    /// ([`Executor::execute_node`]), so no intermediate relation is ever copied.
    pub fn execute_shared_physical(
        &mut self,
        plan: &Arc<PhysicalPlan>,
        exec: &mut Executor<'_>,
    ) -> EngineResult<Arc<Relation>> {
        let root = self.dag.add_plan(plan);
        let mut store = LruStore {
            results: &mut self.results,
        };
        self.dag.resolve_root(root, exec, &mut store)
    }

    /// Distinct bound operators merged into the cache's persistent sharing graph.
    #[must_use]
    pub fn dag_nodes(&self) -> usize {
        self.dag.node_count()
    }
}

/// The [`DagResultCache`] view of the LRU store (split off so the persistent DAG can be
/// borrowed alongside it during resolution).  Hit/miss accounting lives in the
/// [`LruCache`] itself.
struct LruStore<'a> {
    results: &'a mut LruCache<u64, Arc<Relation>>,
}

impl DagResultCache for LruStore<'_> {
    fn lookup(&mut self, fingerprint: u64) -> Option<Arc<Relation>> {
        self.results.get(&fingerprint).map(Arc::clone)
    }

    fn publish(&mut self, fingerprint: u64, result: &Arc<Relation>) {
        if self.results.weight_budget().is_some() {
            let bytes = result.estimated_bytes().max(1);
            self.results
                .insert_weighted(fingerprint, Arc::clone(result), bytes);
        } else {
            self.results.insert(fingerprint, Arc::clone(result));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use urm_engine::Predicate;
    use urm_storage::{Attribute, Catalog, DataType, Schema, Tuple, Value};

    fn catalog() -> Catalog {
        let schema = Schema::new(
            "R",
            vec![
                Attribute::new("a", DataType::Int),
                Attribute::new("b", DataType::Text),
            ],
        );
        let rows = (0..10)
            .map(|i| {
                Tuple::new(vec![
                    Value::from(i as i64),
                    Value::from(if i % 2 == 0 { "x" } else { "y" }),
                ])
            })
            .collect();
        let mut cat = Catalog::new();
        cat.insert(Relation::new(schema, rows).unwrap());
        cat
    }

    #[test]
    fn identical_plans_share_one_execution() {
        let cat = catalog();
        let mut cache = SharedPlanCache::new();
        let mut exec = Executor::new(&cat);
        let plan = Plan::scan("R").select(Predicate::eq("R.b", Value::from("x")));
        let a = cache.execute_shared(&plan, &mut exec).unwrap();
        let b = cache.execute_shared(&plan, &mut exec).unwrap();
        assert_eq!(a.len(), 5);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.hits(), 1);
        // One miss for the scan, one for the selection.
        assert_eq!(cache.misses(), 2);
        // The scan itself executed only once.
        assert_eq!(exec.stats().scans, 1);
        // The persistent sharing graph holds each distinct bound operator once, however many
        // times the plan is re-executed (the re-bound tree dedups onto the same nodes).
        assert_eq!(cache.dag_nodes(), 2);
    }

    #[test]
    fn shared_prefix_is_reused_across_different_queries() {
        let cat = catalog();
        let mut cache = SharedPlanCache::new();
        let mut exec = Executor::new(&cat);
        let base = Plan::scan("R").select(Predicate::eq("R.b", Value::from("x")));
        let q1 = base.clone().project(vec!["R.a".into()]);
        let q2 = base.clone().project(vec!["R.b".into()]);
        cache.execute_shared(&q1, &mut exec).unwrap();
        cache.execute_shared(&q2, &mut exec).unwrap();
        // Scan and selection shared; only the two projections are distinct on top.
        assert_eq!(exec.stats().scans, 1);
        assert_eq!(cache.len(), 4); // scan, select, 2 projections
        assert_eq!(cache.hits(), 1); // q2 hit the cached selection
    }

    #[test]
    fn results_match_unshared_execution() {
        let cat = catalog();
        let mut cache = SharedPlanCache::new();
        let mut exec = Executor::new(&cat);
        let plan = Plan::scan("R")
            .select(Predicate::eq("R.b", Value::from("y")))
            .project(vec!["R.a".into()]);
        let shared = cache.execute_shared(&plan, &mut exec).unwrap();
        let direct = Executor::new(&cat).run(&plan).unwrap();
        assert_eq!(shared.rows(), direct.rows());
    }

    #[test]
    fn empty_cache_reports_empty() {
        let cache = SharedPlanCache::new();
        assert!(cache.is_empty());
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 0);
        assert_eq!(cache.hit_rate(), 0.0);
        assert_eq!(cache.capacity(), None);
    }

    #[test]
    fn byte_budgeted_cache_evicts_by_result_size() {
        let cat = catalog();
        let scan_bytes = cat.get("R").unwrap().estimated_bytes();
        // Room for the scan plus one selection result, nothing more.
        let mut cache = SharedPlanCache::with_byte_budget(scan_bytes + scan_bytes / 2);
        let mut exec = Executor::new(&cat);
        let sel_x = Plan::scan("R").select(Predicate::eq("R.b", Value::from("x")));
        let sel_y = Plan::scan("R").select(Predicate::eq("R.b", Value::from("y")));

        let first = cache.execute_shared(&sel_x, &mut exec).unwrap();
        assert!(cache.resident_weight() > 0);
        assert!(cache.resident_weight() <= scan_bytes + scan_bytes / 2);
        cache.execute_shared(&sel_y, &mut exec).unwrap();
        assert!(
            cache.evictions() > 0,
            "the second selection must displace something by bytes"
        );
        assert!(cache.resident_weight() <= scan_bytes + scan_bytes / 2);
        // Evicted or not, recomputation reproduces identical rows.
        let again = cache.execute_shared(&sel_x, &mut exec).unwrap();
        assert_eq!(again.rows(), first.rows());
    }

    #[test]
    fn bounded_cache_evicts_lru_and_recomputes() {
        let cat = catalog();
        // Capacity 2: the scan plus one selection fit; a second selection evicts the first.
        let mut cache = SharedPlanCache::with_capacity(2);
        let mut exec = Executor::new(&cat);
        let sel_x = Plan::scan("R").select(Predicate::eq("R.b", Value::from("x")));
        let sel_y = Plan::scan("R").select(Predicate::eq("R.b", Value::from("y")));

        let first = cache.execute_shared(&sel_x, &mut exec).unwrap();
        assert_eq!(cache.misses(), 2); // scan + selection
        cache.execute_shared(&sel_y, &mut exec).unwrap();
        assert_eq!(cache.hits(), 1); // the scan was reused…
        assert_eq!(cache.evictions(), 1); // …and sel_x was evicted to admit sel_y
        assert_eq!(cache.len(), 2);

        // sel_x is gone, so running it again recomputes — with identical results.
        let again = cache.execute_shared(&sel_x, &mut exec).unwrap();
        assert_eq!(again.rows(), first.rows());
        assert!(cache.misses() > 3);
        assert!(cache.hit_rate() > 0.0 && cache.hit_rate() < 1.0);
        assert_eq!(cache.capacity(), Some(2));
    }
}
